package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"netmaster/internal/faults"
	"netmaster/internal/simtime"
)

// RetryPolicy bounds the client's transparent retries of transient
// failures: 429 responses (honouring Retry-After), read_only 503s from
// a degraded daemon, and network-level round-trip errors. Retries are
// opt-in via WithRetry; the zero policy disables them.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the first backoff step; it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff and any server-sent Retry-After.
	MaxDelay time.Duration
	// Seed keys the deterministic backoff jitter.
	Seed uint64
}

// DefaultRetryPolicy retries overload answers a handful of times over
// roughly a second — enough to ride out a draining or compacting
// daemon without hiding a persistent outage.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: 1}
}

// Client is a typed caller for the netmaster-serve API. The zero value
// is not usable; build one with NewClient.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses http.DefaultClient.
// The client does not retry; chain WithRetry to opt in.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient, sleep: sleepCtx}
}

// WithRetry returns a copy of the client that retries transient
// failures under p. The original client is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	d := *c
	d.retry = p
	return &d
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether a failed attempt is worth repeating, and
// the server-requested delay if it named one. Overload (429) and a
// read-only daemon (503 kind "read_only") are transient by contract;
// other API errors are answers, not failures. Transport errors retry
// unless the caller's context ended.
func retryable(err error, resp *http.Response) (bool, time.Duration) {
	var ae *apiError
	if errors.As(err, &ae) {
		transient := ae.Code == http.StatusTooManyRequests ||
			(ae.Code == http.StatusServiceUnavailable && ae.Kind == "read_only")
		if !transient {
			return false, 0
		}
		var after time.Duration
		if resp != nil {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return true, after
	}
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return true, 0
	}
	return false, 0
}

// backoffDelay is the wait before attempt n (1-based first retry),
// jittered deterministically from the policy seed via faults.Backoff.
func (p RetryPolicy) backoffDelay(attempt int, serverAfter time.Duration) time.Duration {
	d := time.Duration(faults.Backoff(
		simtime.Duration(p.BaseDelay/time.Millisecond),
		simtime.Duration(p.MaxDelay/time.Millisecond),
		attempt, p.Seed)) * time.Millisecond
	if serverAfter > d {
		d = serverAfter
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// do round-trips one call: method + path + optional JSON body → decoded
// response. API errors come back as *apiError with the server's kind
// and message. Under a retry policy, transient failures are retried
// with capped jittered backoff; the final error is returned verbatim.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		var resp *http.Response
		err, resp = c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		ok, after := retryable(err, resp)
		if !ok || attempt == attempts-1 {
			return err
		}
		if serr := c.sleep(ctx, c.retry.backoffDelay(attempt+1, after)); serr != nil {
			return err
		}
	}
	return err
}

// once performs a single HTTP attempt. The response is returned (body
// already closed) so the retry loop can read Retry-After.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (error, *http.Response) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err, nil
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error *apiError `json:"error"`
		}
		if jerr := json.NewDecoder(resp.Body).Decode(&e); jerr == nil && e.Error != nil {
			e.Error.Code = resp.StatusCode
			return e.Error, resp
		}
		return fmt.Errorf("server: %s %s: status %d", method, path, resp.StatusCode), resp
	}
	if out == nil {
		return nil, resp
	}
	return json.NewDecoder(resp.Body).Decode(out), resp
}

// Mine calls POST /v1/mine.
func (c *Client) Mine(ctx context.Context, req MineRequest) (*MineResponse, error) {
	var out MineResponse
	if err := c.do(ctx, http.MethodPost, "/v1/mine", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProfileUpdate calls POST /v1/profile/update.
func (c *Client) ProfileUpdate(ctx context.Context, req ProfileUpdateRequest) (*ProfileUpdateResponse, error) {
	var out ProfileUpdateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/profile/update", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schedule calls POST /v1/schedule.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate calls POST /v1/simulate.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	var out SimulateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ingest calls POST /v1/fleet/ingest.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (*IngestResponse, error) {
	var out IngestResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/ingest", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetReport calls GET /v1/fleet/report. model may be "" (3g) or a
// power model name.
func (c *Client) FleetReport(ctx context.Context, model string) (*FleetReportResponse, error) {
	path := "/v1/fleet/report"
	if model != "" {
		path += "?model=" + model
	}
	var out FleetReportResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz calls GET /healthz.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
