package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"netmaster/internal/faults"
	"netmaster/internal/metrics"
	"netmaster/internal/simtime"
)

// RetryPolicy bounds the client's transparent retries of transient
// failures: 429 responses (honouring Retry-After), read_only 503s from
// a degraded daemon, and network-level round-trip errors. Retries are
// opt-in via WithRetry; the zero policy disables them.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the first backoff step; it doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff and any server-sent Retry-After.
	MaxDelay time.Duration
	// Seed keys the deterministic backoff jitter.
	Seed uint64
}

// DefaultRetryPolicy retries overload answers a handful of times over
// roughly a second — enough to ride out a draining or compacting
// daemon without hiding a persistent outage.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: 1}
}

// Client is a typed caller for the netmaster-serve API. The zero value
// is not usable; build one with NewClient.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses http.DefaultClient.
// The client does not retry; chain WithRetry to opt in.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient, sleep: sleepCtx}
}

// WithRetry returns a copy of the client that retries transient
// failures under p. The original client is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	d := *c
	d.retry = p
	return &d
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether a failed attempt is worth repeating, and
// the server-requested delay if it named one. Overload (429) and a
// read-only daemon (503 kind "read_only") are transient by contract —
// both are definitive proof the request was NOT applied, so they are
// safe to retry regardless of idempotency. Other API errors are
// answers, not failures. Transport errors are ambiguous: the server may
// have processed the request before the connection died, so they retry
// only for idempotent calls (everything except a batch ingest without a
// request_id — with a request_id the server deduplicates the replay).
func retryable(err error, resp *http.Response, idempotent bool) (bool, time.Duration) {
	var ae *apiError
	if errors.As(err, &ae) {
		transient := ae.Code == http.StatusTooManyRequests ||
			(ae.Code == http.StatusServiceUnavailable && ae.Kind == "read_only")
		if !transient {
			return false, 0
		}
		var after time.Duration
		if resp != nil {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return true, after
	}
	if err != nil && idempotent &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return true, 0
	}
	return false, 0
}

// backoffDelay is the wait before attempt n (1-based first retry),
// jittered deterministically from the policy seed via faults.Backoff.
func (p RetryPolicy) backoffDelay(attempt int, serverAfter time.Duration) time.Duration {
	d := time.Duration(faults.Backoff(
		simtime.Duration(p.BaseDelay/time.Millisecond),
		simtime.Duration(p.MaxDelay/time.Millisecond),
		attempt, p.Seed)) * time.Millisecond
	if serverAfter > d {
		d = serverAfter
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// do round-trips one idempotent call: method + path + optional JSON
// body → decoded response. API errors come back as *apiError with the
// server's kind and message. Under a retry policy, transient failures
// are retried with capped jittered backoff; the final error is returned
// verbatim.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doIdem(ctx, method, path, in, out, true)
}

// doIdem is do with an explicit idempotency statement: non-idempotent
// calls never retry ambiguous transport errors (the request may have
// landed), only definitive not-processed answers like 429.
func (c *Client) doIdem(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		var resp *http.Response
		err, resp = c.once(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		ok, after := retryable(err, resp, idempotent)
		if !ok || attempt == attempts-1 {
			return err
		}
		if serr := c.sleep(ctx, c.retry.backoffDelay(attempt+1, after)); serr != nil {
			return err
		}
	}
	return err
}

// once performs a single HTTP attempt. The response is returned (body
// already closed) so the retry loop can read Retry-After.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, out any) (error, *http.Response) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err, nil
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error *apiError `json:"error"`
		}
		if jerr := json.NewDecoder(resp.Body).Decode(&e); jerr == nil && e.Error != nil {
			e.Error.Code = resp.StatusCode
			return e.Error, resp
		}
		return fmt.Errorf("server: %s %s: status %d", method, path, resp.StatusCode), resp
	}
	if out == nil {
		return nil, resp
	}
	return json.NewDecoder(resp.Body).Decode(out), resp
}

// Mine calls POST /v1/mine.
func (c *Client) Mine(ctx context.Context, req MineRequest) (*MineResponse, error) {
	var out MineResponse
	if err := c.do(ctx, http.MethodPost, "/v1/mine", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ProfileUpdate calls POST /v1/profile/update.
func (c *Client) ProfileUpdate(ctx context.Context, req ProfileUpdateRequest) (*ProfileUpdateResponse, error) {
	var out ProfileUpdateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/profile/update", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schedule calls POST /v1/schedule.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	var out ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Simulate calls POST /v1/simulate.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	var out SimulateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ingest calls POST /v1/fleet/ingest.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (*IngestResponse, error) {
	var out IngestResponse
	if err := c.do(ctx, http.MethodPost, "/v1/fleet/ingest", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestBatch calls POST /v1/fleet/ingest:batch. The call is treated
// as idempotent — and therefore safe to retry on ambiguous transport
// errors — only when req.RequestID is set, because only then can the
// server deduplicate a replayed batch. Without a request_id, transport
// failures surface immediately rather than risk double-ingesting.
func (c *Client) IngestBatch(ctx context.Context, req BatchIngestRequest) (*BatchIngestResponse, error) {
	var out BatchIngestResponse
	if err := c.doIdem(ctx, http.MethodPost, "/v1/fleet/ingest:batch", req, &out, req.RequestID != ""); err != nil {
		return nil, err
	}
	return &out, nil
}

// ScheduleBatch calls POST /v1/schedule:batch (pure, so always
// retry-safe).
func (c *Client) ScheduleBatch(ctx context.Context, req BatchScheduleRequest) (*BatchScheduleResponse, error) {
	var out BatchScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule:batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetDevices calls GET /v1/fleet/devices.
func (c *Client) FleetDevices(ctx context.Context, model string, reports bool) (*FleetDevicesResponse, error) {
	path := "/v1/fleet/devices"
	switch {
	case model != "" && !reports:
		path += "?model=" + model + "&reports=0"
	case model != "":
		path += "?model=" + model
	case !reports:
		path += "?reports=0"
	}
	var out FleetDevicesResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetReport calls GET /v1/fleet/report. model may be "" (3g) or a
// power model name.
func (c *Client) FleetReport(ctx context.Context, model string) (*FleetReportResponse, error) {
	path := "/v1/fleet/report"
	if model != "" {
		path += "?model=" + model
	}
	var out FleetReportResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics calls GET /metrics and returns the raw Prometheus text
// exposition. scope may be "" (self + fleet), "fleet" or "self".
func (c *Client) Metrics(ctx context.Context, scope string) ([]byte, error) {
	path := "/metrics"
	if scope != "" {
		path += "?scope=" + scope
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: GET %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// MetricsSnapshot calls GET /metrics?format=json&scope=self: the raw
// registry snapshot of the process answering (daemon server_* series,
// router router_* series) — the surface netmaster-bench scrapes for
// server-side latency quantiles and SLO burn counters.
func (c *Client) MetricsSnapshot(ctx context.Context) (*metrics.Snapshot, error) {
	var out metrics.Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics?format=json&scope=self", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DebugRequests calls GET /debug/requests. n bounds the recent-span
// dump; n <= 0 keeps the server default.
func (c *Client) DebugRequests(ctx context.Context, n int) (*DebugRequestsResponse, error) {
	path := "/debug/requests"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out DebugRequestsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz calls GET /healthz.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
