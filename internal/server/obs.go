// Per-request observability shared by the daemon and the router: RED
// instrumentation handles per endpoint (rate, errors by class,
// duration, in-flight), the structured access-log line, the
// slow-request line, and the /debug/requests ring dump. The request
// spine in server.go/router.go drives these; everything here is
// observational — response bodies never change, so the handler goldens
// stay byte-identical.
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"netmaster/internal/metrics"
	"netmaster/internal/reqtrace"
)

// endpointObs is one endpoint's RED instrumentation: request and
// error-class counters, a latency histogram on the shared
// LatencyBuckets (so per-shard series merge bucket-exactly through the
// router's fold), and an in-flight gauge. Series are named
// <role>_http_<endpoint>_{requests_total,errors_4xx_total,
// errors_5xx_total,latency_ms,in_flight}.
type endpointObs struct {
	requests *metrics.Counter
	err4xx   *metrics.Counter
	err5xx   *metrics.Counter
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	n        atomic.Int64
}

// newEndpointObs registers (or resolves) the endpoint's series in reg.
// rolePrefix is "server_" or "router_"; a nil registry yields no-op
// handles.
func newEndpointObs(reg *metrics.Registry, rolePrefix, endpoint string) *endpointObs {
	base := rolePrefix + "http_" + endpoint + "_"
	return &endpointObs{
		requests: reg.Counter(base + "requests_total"),
		err4xx:   reg.Counter(base + "errors_4xx_total"),
		err5xx:   reg.Counter(base + "errors_5xx_total"),
		latency:  reg.Histogram(base+"latency_ms", LatencyBuckets),
		inflight: reg.Gauge(base + "in_flight"),
	}
}

// enter/exit track the endpoint's admitted in-flight count.
func (e *endpointObs) enter() { e.inflight.Set(float64(e.n.Add(1))) }
func (e *endpointObs) exit()  { e.inflight.Set(float64(e.n.Add(-1))) }

// finish records the answered request: duration always, an error-class
// counter for non-2xx statuses.
func (e *endpointObs) finish(status int, totalMS float64) {
	e.latency.Observe(totalMS)
	switch {
	case status >= 500:
		e.err5xx.Inc()
	case status >= 400:
		e.err4xx.Inc()
	}
}

// durMS converts a duration to fractional milliseconds.
func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// accessLine is the structured access-log schema, one JSON line per
// request. The shape is pinned by TestGoldenAccessLog; extend it
// additively. ms is the request's total wall time (admission included);
// queue_wait_ms isolates the pre-handler share of it.
type accessLine struct {
	Role        string  `json:"role,omitempty"` // "router"; absent on the daemon
	Method      string  `json:"method"`
	Path        string  `json:"path"`
	Status      int     `json:"status"`
	Bytes       int     `json:"bytes"`
	Millis      int64   `json:"ms"`
	InFlight    int64   `json:"in_flight"`
	RequestID   string  `json:"request_id"`
	Shard       string  `json:"shard,omitempty"` // routed backend, router only
	Cache       string  `json:"cache,omitempty"` // profile-cache disposition
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

// slowLine wraps a span for the slow-request log: one JSON line keyed
// "slow_request", emitted when a request's total latency reaches the
// configured threshold.
type slowLine struct {
	SlowRequest reqtrace.Span `json:"slow_request"`
}

// emitLog marshals one log line to w; nil w disables logging and
// marshal failures are dropped (logging must never fail a request).
func emitLog(w io.Writer, line any) {
	if w == nil {
		return
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
}

// debugRecentDefault bounds the recent-span dump when ?n= is absent;
// the slowest set is small enough to always dump whole.
const debugRecentDefault = 64

// handleDebugRequests serves GET /debug/requests for either role's
// ring: the most recent spans (up to ?n=, default 64) and the retained
// slowest. Spans carry request metadata only — no bodies — so the dump
// is redaction-safe. The endpoint bypasses the limited spine: reading
// the ring must not append to it.
func handleDebugRequests(ring *reqtrace.Ring) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := debugRecentDefault
		if v := r.URL.Query().Get("n"); v != "" {
			p, err := strconv.Atoi(v)
			if err != nil || p <= 0 {
				writeError(w, &apiError{Code: http.StatusBadRequest, Kind: "bad_request",
					Msg: "n must be a positive integer"})
				return
			}
			n = p
		}
		resp := DebugRequestsResponse{
			Capacity: ring.Capacity(),
			Total:    ring.Total(),
			Dropped:  ring.Dropped(),
			Recent:   ring.Recent(n),
			Slowest:  ring.Slowest(0),
		}
		if resp.Recent == nil {
			resp.Recent = []reqtrace.Span{}
		}
		if resp.Slowest == nil {
			resp.Slowest = []reqtrace.Span{}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}
