// Durable serve state. With Config.StateDir set, every acknowledged
// /v1/fleet/ingest and /v1/profile/update is appended to a write-ahead
// journal (internal/store) before the response is written, and the full
// state — the sorted-device fleet plus persisted profile sketches — is
// periodically compacted into a snapshot. Startup recovery loads the
// latest valid snapshot, replays the journal tail and re-compacts, so a
// crashed daemon comes back with byte-identical fleet reports and
// profile IDs. When the journal becomes unwritable the daemon degrades
// to read-only (typed 503 on mutating endpoints) instead of silently
// dropping ingests.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"netmaster/internal/habit"
	"netmaster/internal/store"
)

// walRecord is one journal entry: exactly one of the payloads is set.
type walRecord struct {
	// Kind is "ingest", "ingest_batch" or "profile".
	Kind string `json:"kind"`
	// Ingest carries one device's /v1/fleet/ingest body.
	Ingest *IngestRequest `json:"ingest,omitempty"`
	// ProfileID and Sketch carry one acknowledged profile state: the
	// sketch-state hash and the habit sketch's binary encoding.
	ProfileID string `json:"profile_id,omitempty"`
	Sketch    []byte `json:"sketch,omitempty"`
	// RequestID, Items and Ack carry one acknowledged ingest batch: the
	// idempotency key (may be empty), the accepted items, and the exact
	// response bytes the batch was acked with — replayed into the dedup
	// cache on recovery so a post-crash retry still deduplicates.
	RequestID string          `json:"request_id,omitempty"`
	Items     []IngestRequest `json:"items,omitempty"`
	Ack       []byte          `json:"ack,omitempty"`
}

// snapshotDevice is one device inside a snapshot document.
type snapshotDevice struct {
	DeviceID string         `json:"device_id"`
	Ingest   *IngestRequest `json:"ingest"`
}

// snapshotProfile is one persisted profile inside a snapshot document.
type snapshotProfile struct {
	ID     string `json:"id"`
	Sketch []byte `json:"sketch"`
}

// snapshotAck is one batch-ingest idempotency entry inside a snapshot.
type snapshotAck struct {
	RequestID string `json:"request_id"`
	Ack       []byte `json:"ack"`
}

// snapshotDoc is the compaction payload: the whole durable state.
// Devices are sorted by ID; profiles and batch acks run least- to
// most-recently used so re-insertion rebuilds the same recency order.
type snapshotDoc struct {
	Devices   []snapshotDevice  `json:"devices"`
	Profiles  []snapshotProfile `json:"profiles"`
	BatchAcks []snapshotAck     `json:"batch_acks,omitempty"`
}

// errReadOnly is the typed degraded-mode answer for mutating endpoints
// once the journal is unwritable.
func errReadOnly(cause error) *apiError {
	return &apiError{Code: http.StatusServiceUnavailable, Kind: "read_only",
		Msg: fmt.Sprintf("state journal unwritable, serving reads only: %v", cause)}
}

// openStore recovers the state directory into the freshly built server
// and re-compacts, leaving a snapshot that covers everything recovered
// and an empty journal. Interior corruption aborts startup: refusing to
// serve beats silently forgetting acknowledged state.
func (s *Server) openStore() error {
	st, rec, err := store.Open(store.Config{Dir: s.cfg.StateDir, FS: s.cfg.StateFS})
	if err != nil {
		return fmt.Errorf("server: state recovery: %w", err)
	}
	s.store = st
	if rec.SnapshotPayload != nil {
		var doc snapshotDoc
		if err := json.Unmarshal(rec.SnapshotPayload, &doc); err != nil {
			return fmt.Errorf("server: state recovery: %w: snapshot body: %v", store.ErrCorrupt, err)
		}
		for _, d := range doc.Devices {
			if d.Ingest == nil || d.Ingest.DeviceID == "" {
				return fmt.Errorf("server: state recovery: %w: snapshot device entry without ingest body", store.ErrCorrupt)
			}
			s.applyIngest(d.Ingest)
		}
		for _, p := range doc.Profiles {
			if err := s.applyProfile(p.ID, p.Sketch); err != nil {
				return err
			}
		}
		for _, a := range doc.BatchAcks {
			if a.RequestID == "" || len(a.Ack) == 0 {
				return fmt.Errorf("server: state recovery: %w: snapshot batch-ack entry without id or body", store.ErrCorrupt)
			}
			s.batchAcks.Put(a.RequestID, a.Ack)
		}
	}
	for _, payload := range rec.Records {
		var w walRecord
		if err := json.Unmarshal(payload, &w); err != nil {
			return fmt.Errorf("server: state recovery: %w: journal record body: %v", store.ErrCorrupt, err)
		}
		switch w.Kind {
		case "ingest":
			if w.Ingest == nil || w.Ingest.DeviceID == "" {
				return fmt.Errorf("server: state recovery: %w: ingest record without body", store.ErrCorrupt)
			}
			s.applyIngest(w.Ingest)
		case "ingest_batch":
			if len(w.Items) == 0 {
				return fmt.Errorf("server: state recovery: %w: ingest_batch record without items", store.ErrCorrupt)
			}
			for i := range w.Items {
				if w.Items[i].DeviceID == "" {
					return fmt.Errorf("server: state recovery: %w: ingest_batch item without device_id", store.ErrCorrupt)
				}
				s.applyIngest(&w.Items[i])
			}
			if w.RequestID != "" && len(w.Ack) > 0 {
				s.batchAcks.Put(w.RequestID, w.Ack)
			}
		case "profile":
			if err := s.applyProfile(w.ProfileID, w.Sketch); err != nil {
				return err
			}
		default:
			return fmt.Errorf("server: state recovery: %w: unknown record kind %q", store.ErrCorrupt, w.Kind)
		}
		s.mStoreReplays.Inc()
	}
	if rec.TornTail {
		s.mStoreTorn.Inc()
	}
	// Fold the replayed tail into a fresh snapshot so every boot starts
	// from a compacted base.
	if err := s.compactLocked(); err != nil {
		return fmt.Errorf("server: state recovery: %w", err)
	}
	s.mStoreRecovery.Set(float64(rec.Elapsed.Milliseconds()))
	return nil
}

// applyIngest folds one ingest into the fleet map (replay path; the
// live path in handleIngest goes through the same assignment).
func (s *Server) applyIngest(req *IngestRequest) {
	s.fleetMu.Lock()
	s.fleet[req.DeviceID] = ingested{metrics: req.Metrics, header: req.Header, events: req.Events}
	s.fleetMu.Unlock()
}

// applyProfile restores one persisted profile sketch, refusing blobs
// whose decoded state does not hash back to the recorded ID.
func (s *Server) applyProfile(id string, blob []byte) error {
	sk, err := habit.UnmarshalSketch(blob)
	if err != nil {
		return fmt.Errorf("server: state recovery: %w: profile %s: %v", store.ErrCorrupt, id, err)
	}
	if got := sk.Hash(); got != id {
		return fmt.Errorf("server: state recovery: %w: profile blob hashes to %s, journal says %s",
			store.ErrCorrupt, got, id)
	}
	s.profiles.Put(id, &profileEntry{sketch: sk, profile: sk.Profile()})
	s.persisted.Put(id, blob)
	return nil
}

// ingestDurable appends one ingest to the journal and applies it to the
// fleet map as a single atomic mutation (stateMu), so a concurrent
// compaction can never cover a journal record whose effect is not yet
// in the snapshot it writes.
func (s *Server) ingestDurable(req *IngestRequest) error {
	s.stateMu.Lock()
	err := s.journalAppend(&walRecord{Kind: "ingest", Ingest: req})
	if err == nil {
		s.applyIngest(req)
	}
	s.stateMu.Unlock()
	if err != nil {
		return err
	}
	s.maybeCompact()
	return nil
}

// persistProfile journals one profile sketch state (id already verified
// to be sk.Hash()) before the handler acks. Already-persisted IDs are
// skipped: the journal records state transitions, not cache traffic.
func (s *Server) persistProfile(id string, sk *habit.Sketch) error {
	s.stateMu.Lock()
	if _, ok := s.persisted.Get(id); ok {
		s.stateMu.Unlock()
		return nil
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		s.stateMu.Unlock()
		return &apiError{Code: http.StatusInternalServerError, Kind: "internal",
			Msg: fmt.Sprintf("serialise profile %s: %v", id, err)}
	}
	aerr := s.journalAppend(&walRecord{Kind: "profile", ProfileID: id, Sketch: blob})
	if aerr == nil {
		s.persisted.Put(id, blob)
	}
	s.stateMu.Unlock()
	if aerr != nil {
		return aerr
	}
	s.maybeCompact()
	return nil
}

// journalAppend appends one record; callers hold stateMu.
func (s *Server) journalAppend(w *walRecord) error {
	payload, err := json.Marshal(w)
	if err != nil {
		return &apiError{Code: http.StatusInternalServerError, Kind: "internal", Msg: err.Error()}
	}
	if _, err := s.store.Append(payload); err != nil {
		return errReadOnly(err)
	}
	s.mStoreAppends.Inc()
	return nil
}

// maybeCompact compacts once the journal has grown past the configured
// record count. Compaction failure is not fatal to the request — the
// journal still holds everything — so the next append retries it.
func (s *Server) maybeCompact() {
	every := s.cfg.CompactEvery
	if every <= 0 {
		every = DefaultCompactEvery
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.store.AppendsSinceCompact() < every || s.store.Unwritable() != nil {
		return
	}
	s.compactLocked()
}

// compactLocked snapshots the full durable state through the store;
// callers hold stateMu (or are still single-threaded inside New).
func (s *Server) compactLocked() error {
	doc := snapshotDoc{Devices: []snapshotDevice{}, Profiles: []snapshotProfile{}}
	s.fleetMu.Lock()
	ids := make([]string, 0, len(s.fleet))
	for id := range s.fleet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := s.fleet[id]
		req := &IngestRequest{DeviceID: id, Metrics: d.metrics, Header: d.header, Events: d.events}
		doc.Devices = append(doc.Devices, snapshotDevice{DeviceID: id, Ingest: req})
	}
	s.fleetMu.Unlock()
	s.persisted.each(func(key string, val any) {
		doc.Profiles = append(doc.Profiles, snapshotProfile{ID: key, Sketch: val.([]byte)})
	})
	s.batchAcks.each(func(key string, val any) {
		doc.BatchAcks = append(doc.BatchAcks, snapshotAck{RequestID: key, Ack: val.([]byte)})
	})
	payload, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	if err := s.store.Compact(payload); err != nil {
		return err
	}
	s.mStoreCompact.Inc()
	return nil
}

// storeStatus summarises the durable layer for /healthz, nil without a
// state dir.
func (s *Server) storeStatus() *StoreStatus {
	if s.store == nil {
		return nil
	}
	st := &StoreStatus{Mode: "read_write", Seq: s.store.Seq(),
		AppendsSinceCompact: s.store.AppendsSinceCompact()}
	if err := s.store.Unwritable(); err != nil {
		st.Mode = "read_only"
	}
	return st
}

// PersistedProfileIDs returns the sorted IDs of every profile currently
// held durably — the recovery-equality oracle the crash soak compares.
func (s *Server) PersistedProfileIDs() []string {
	ids := []string{}
	s.persisted.each(func(key string, _ any) { ids = append(ids, key) })
	sort.Strings(ids)
	return ids
}

// Close releases the durable store's journal handle (idempotent; no-op
// without a state dir). Shutdown does not imply Close, so a drained
// server can still be inspected; cmd/netmaster-serve closes on exit.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}
