// The sketch-aware profile cache. Profiles are cached under their
// sketch-state hash ("sketch:…" — see habit.(*Sketch).Hash), so the
// cache identity of an incrementally maintained profile costs O(sketch
// state) to compute, independent of how much trace has been folded in.
// Requests that ship a trace (or a gen spec) reach the cache through a
// cheap request-shape alias, so a warm hit never re-serialises — or, on
// the gen path, even synthesises — the trace.
package server

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"

	"netmaster/internal/habit"
	"netmaster/internal/trace"
)

// profileEntry is one cached profile: the materialised profile plus the
// sketch it came from, so later /v1/profile/update calls can fold new
// days on top without re-mining history. Both are immutable once
// cached; updates clone the sketch.
type profileEntry struct {
	sketch  *habit.Sketch
	profile *habit.Profile
}

// cfgSuffix encodes the mining config for alias keys.
func cfgSuffix(cfg habit.Config) string {
	return fmt.Sprintf("%d:%g:%g:%g",
		cfg.SlotWidth, cfg.WeekdayThreshold, cfg.WeekendThreshold, cfg.RecencyHalfLifeDays)
}

// genAlias is the alias key of a synthesised-trace request. Generation
// is seeded per user, so (user, days, config) fully determines the
// profile — a hit skips synth.Generate and the mine.
func genAlias(gen *GenSpec, cfg habit.Config) string {
	return fmt.Sprintf("gen:%s:%d:%s", gen.User, gen.Days, cfgSuffix(cfg))
}

// binHash writes fixed-width binary fields into a hash without the text
// round-trip trace.Write would cost.
type binHash struct {
	w   *bufio.Writer
	buf [8]byte
}

func (b *binHash) i64(v int64) {
	binary.LittleEndian.PutUint64(b.buf[:], uint64(v))
	b.w.Write(b.buf[:])
}

func (b *binHash) str(s string) {
	b.w.WriteString(s)
	b.w.WriteByte(0)
}

// traceAlias is the alias key of an inline-trace request: a binary
// content hash over every trace field plus the mining config. This
// replaces the old per-request canonical-text serialisation — same
// collision resistance, no fmt formatting on the hot path.
func traceAlias(t *trace.Trace, cfg habit.Config) string {
	h := sha256.New()
	b := &binHash{w: bufio.NewWriter(h)}
	b.str(t.UserID)
	b.i64(int64(t.Days))
	b.i64(int64(len(t.InstalledApps)))
	for _, app := range t.InstalledApps {
		b.str(string(app))
	}
	b.i64(int64(len(t.Sessions)))
	for _, s := range t.Sessions {
		b.i64(int64(s.Interval.Start))
		b.i64(int64(s.Interval.End))
	}
	b.i64(int64(len(t.Activities)))
	for _, a := range t.Activities {
		b.str(string(a.App))
		b.i64(int64(a.Start))
		b.i64(int64(a.Duration))
		b.i64(a.BytesDown)
		b.i64(a.BytesUp)
		b.i64(int64(a.Kind))
	}
	b.i64(int64(len(t.Interactions)))
	for _, ia := range t.Interactions {
		b.i64(int64(ia.Time))
		b.str(string(ia.App))
		wants := int64(0)
		if ia.WantsNetwork {
			wants = 1
		}
		b.i64(wants)
	}
	b.str(cfgSuffix(cfg))
	b.w.Flush()
	return "trace:" + hex.EncodeToString(h.Sum(nil))
}

// aliasHit resolves a request-shape alias through both cache levels.
func (s *Server) aliasHit(alias string) (*profileEntry, string, bool) {
	idv, ok := s.aliases.Get(alias)
	if !ok {
		return nil, "", false
	}
	id := idv.(string)
	v, ok := s.profiles.Get(id)
	if !ok {
		return nil, "", false
	}
	return v.(*profileEntry), id, true
}

// storeProfile caches an entry under its sketch-state ID.
func (s *Server) storeProfile(id string, e *profileEntry) {
	if s.profiles.Put(id, e) {
		s.mCacheEvic.Inc()
		s.mProfEvic.Inc()
	}
}

// resolveProfile is the one profile path for mine and schedule
// requests: alias lookup first (skipping generation and mining on a
// hit), sketch-mine on a miss. The response body is byte-identical
// either way; only the X-Netmaster-Cache header and counters differ.
func (s *Server) resolveProfile(tr *trace.Trace, gen *GenSpec, cfg habit.Config) (*profileEntry, string, bool, error) {
	var alias string
	switch {
	case tr != nil:
		alias = traceAlias(tr, cfg)
	case gen != nil:
		alias = genAlias(gen, cfg)
	default:
		return nil, "", false, &apiError{Code: http.StatusBadRequest, Kind: "bad_request", Msg: "need trace or gen"}
	}
	if e, id, ok := s.aliasHit(alias); ok {
		s.mCacheHit.Inc()
		s.mProfHit.Inc()
		return e, id, true, nil
	}
	s.mCacheMiss.Inc()
	s.mProfMiss.Inc()
	t, _, err := resolveTrace(tr, gen)
	if err != nil {
		return nil, "", false, err
	}
	sk, err := habit.NewSketch(t.UserID, cfg)
	if err != nil {
		return nil, "", false, &apiError{Code: http.StatusBadRequest, Kind: "bad_config", Msg: err.Error()}
	}
	if err := sk.FoldTrace(t); err != nil {
		return nil, "", false, &apiError{Code: http.StatusBadRequest, Kind: "mine_failed", Msg: err.Error()}
	}
	e := &profileEntry{sketch: sk, profile: sk.Profile()}
	id := sk.Hash()
	s.storeProfile(id, e)
	s.aliases.Put(alias, id)
	return e, id, false, nil
}

// handleProfileUpdate folds new days into a cached profile's sketch —
// O(new events), not O(whole trace) — and caches the result under its
// new sketch-state ID. With no profile_id it starts a fresh sketch, so
// a cold client can build a profile day by day through this endpoint
// alone.
func (s *Server) handleProfileUpdate(w http.ResponseWriter, r *http.Request) error {
	var req ProfileUpdateRequest
	if err := decode(r, &req); err != nil {
		return err
	}

	var sk *habit.Sketch
	if req.ProfileID != "" {
		if req.Config != nil {
			return &apiError{Code: http.StatusBadRequest, Kind: "bad_request",
				Msg: "config applies only to a fresh profile; the base profile fixes it"}
		}
		v, ok := s.profiles.Get(req.ProfileID)
		if !ok {
			return &apiError{Code: http.StatusNotFound, Kind: "unknown_profile",
				Msg: fmt.Sprintf("profile %s not cached; re-mine or pass the trace", req.ProfileID)}
		}
		s.mCacheHit.Inc()
		s.mProfHit.Inc()
		sk = v.(*profileEntry).sketch.Clone()
	} else {
		var err error
		sk, err = habit.NewSketch("", habitConfig(req.Config))
		if err != nil {
			return &apiError{Code: http.StatusBadRequest, Kind: "bad_config", Msg: err.Error()}
		}
	}

	t, _, err := resolveTrace(req.Trace, req.Gen)
	if err != nil {
		return err
	}
	if req.Day != nil {
		if err := sk.FoldTraceDay(t, *req.Day); err != nil {
			return &apiError{Code: http.StatusBadRequest, Kind: "bad_request", Msg: err.Error()}
		}
	} else if err := sk.FoldTrace(t); err != nil {
		return &apiError{Code: http.StatusBadRequest, Kind: "mine_failed", Msg: err.Error()}
	}

	id := sk.Hash()
	// Durability before acknowledgement: the updated sketch state is
	// journaled (and fsynced) before the cache mutation and the 200, so
	// an acked profile ID survives any crash. Read-only mode answers a
	// typed 503 here instead of acking an update it cannot keep.
	if s.store != nil {
		if err := s.persistProfile(id, sk); err != nil {
			return err
		}
	}
	// "hit" here means this exact fold history was already cached — the
	// update was a no-op for the cache, if not for the fold work.
	_, hit := s.profiles.Get(id)
	if !hit {
		s.mCacheMiss.Inc()
		s.mProfMiss.Inc()
		s.storeProfile(id, &profileEntry{sketch: sk, profile: sk.Profile()})
	} else {
		s.mCacheHit.Inc()
		s.mProfHit.Inc()
	}
	v, _ := s.profiles.Get(id)
	p := v.(*profileEntry).profile

	resp := ProfileUpdateResponse{
		ProfileID:     id,
		BaseProfileID: req.ProfileID,
		Days:          sk.Days(),
		UserID:        p.UserID,
		SlotWidthSecs: int64(p.SlotWidth),
		SpecialApps:   p.SpecialApps,
		Weekday:       dayTypeSummary(p, &p.Weekday, false),
		Weekend:       dayTypeSummary(p, &p.Weekend, true),
	}
	if resp.SpecialApps == nil {
		resp.SpecialApps = []trace.AppID{}
	}
	setCacheHeader(w, hit)
	return writeJSON(w, http.StatusOK, resp)
}
