// Router is the shard-ready face of the serve tier: a netmaster-serve
// process started with -router proxies the /v1/* API across N backend
// daemons, placing every device on exactly one shard via the
// internal/shard consistent-hash ring. Single-device requests forward
// to the owning shard untouched; fleet-wide reads (/v1/fleet/report,
// /v1/fleet/devices, /metrics) fan out to every shard and fold the
// per-device dumps through the same exactly-associative telemetry merge
// a single node uses — so a routed fleet report is byte-identical to a
// one-node run over the same cohort. Batch endpoints partition their
// items by device, fan sub-batches out in parallel, and stitch the
// per-item results back into request order; a shard that cannot be
// reached fails only its own items (kind "bad_gateway"), never the
// envelope, and never fabricates a success.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netmaster/internal/cfgerr"
	"netmaster/internal/metrics"
	"netmaster/internal/parallel"
	"netmaster/internal/reqtrace"
	"netmaster/internal/shard"
	"netmaster/internal/slo"
	"netmaster/internal/telemetry"
)

// RouterConfig parameterises the routing tier.
type RouterConfig struct {
	// Addr is the router's listen address.
	Addr string
	// Backends are the shard base URLs, e.g. "http://127.0.0.1:9101".
	// Order does not matter: placement depends only on the set.
	Backends []string
	// VNodes is the consistent-hash virtual-node count per shard; zero
	// means shard.DefaultVNodes.
	VNodes int
	// MaxInFlight bounds concurrently served requests (429 beyond it).
	MaxInFlight int
	// RequestTimeout is the per-request deadline, covering the full
	// fan-out.
	RequestTimeout time.Duration
	// ShutdownGrace bounds the drain on SIGTERM.
	ShutdownGrace time.Duration
	// Parallelism caps the shard fan-out width; zero keeps the
	// process-wide default.
	Parallelism int
	// LogWriter receives one structured line per request; nil disables.
	LogWriter io.Writer
	// Metrics receives router_* counters; nil disables instrumentation.
	Metrics *metrics.Registry
	// HTTPClient overrides the backend transport; nil uses a default
	// client (per-request deadlines come from the request context).
	HTTPClient *http.Client
	// SlowRequest, when positive, emits a structured slow_request log
	// line for any request whose total wall time reaches the threshold.
	SlowRequest time.Duration
	// TraceRing is the /debug/requests recent-span ring capacity; zero
	// uses reqtrace.DefaultCapacity.
	TraceRing int
	// SLO configures online burn tracking, exposed as router_slo_*
	// series and on /healthz. The zero value disables it.
	SLO slo.Config
}

// DefaultRouterConfig returns production-shaped router defaults; the
// caller must still provide Backends.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		Addr:           "127.0.0.1:0",
		MaxInFlight:    256,
		RequestTimeout: 60 * time.Second,
		ShutdownGrace:  5 * time.Second,
	}
}

// Validate checks the configuration, returning cfgerr field errors.
// Backend-set errors come from shard.Config's own validation.
func (c *RouterConfig) Validate() error {
	var es cfgerr.Errors
	if c.Addr == "" {
		es = append(es, cfgerr.New("server.RouterConfig", "Addr", c.Addr, "must be set"))
	}
	if c.MaxInFlight <= 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "MaxInFlight", c.MaxInFlight, "must be positive"))
	}
	if c.RequestTimeout <= 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "RequestTimeout", c.RequestTimeout, "must be positive"))
	}
	if c.ShutdownGrace <= 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "ShutdownGrace", c.ShutdownGrace, "must be positive"))
	}
	if c.Parallelism < 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "Parallelism", c.Parallelism, "must be non-negative"))
	}
	if c.SlowRequest < 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "SlowRequest", c.SlowRequest, "must be non-negative"))
	}
	if c.TraceRing < 0 {
		es = append(es, cfgerr.New("server.RouterConfig", "TraceRing", c.TraceRing, "must be non-negative"))
	}
	es = appendSLOErrors(es, c.SLO)
	return es.Err()
}

// ShardHealth is one backend's slice of the router's /healthz.
type ShardHealth struct {
	Shard   string `json:"shard"`
	Status  string `json:"status"` // the shard's own status, or "unreachable"
	Devices int    `json:"devices"`
	Error   string `json:"error,omitempty"`
}

// RouterHealthResponse is the body of GET /healthz in -router mode.
// Status is "ok" only when every shard answered "ok".
type RouterHealthResponse struct {
	Status   string        `json:"status"` // ok | degraded
	Shards   []ShardHealth `json:"shards"`
	Devices  int           `json:"devices"`
	InFlight int64         `json:"in_flight"`
	SLO      *slo.Status   `json:"slo,omitempty"`
}

// Router proxies the /v1/* API across the shard ring.
type Router struct {
	cfg    RouterConfig
	ring   *shard.Ring
	mux    *http.ServeMux
	http   *http.Server
	ln     net.Listener
	client *http.Client

	sem      chan struct{}
	inflight atomic.Int64

	// Request observability: span ring, edge request-ID generation, SLO
	// burn tracking, per-endpoint RED handles, injectable clock.
	spans   *reqtrace.Ring
	ids     *reqtrace.IDGen
	tracker *slo.Tracker
	obs     map[string]*endpointObs
	now     func() time.Time

	// router_* instrumentation (nil-tolerant handles).
	mRequests  *metrics.Counter
	mErrors    *metrics.Counter
	mRejected  *metrics.Counter
	mTimeouts  *metrics.Counter
	mProxied   *metrics.Counter
	mFanouts   *metrics.Counter
	mInflight  *metrics.Gauge
	mLatencyMS *metrics.Histogram
}

// NewRouter builds a Router from the config. The listener is not opened
// until Start.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ring, err := shard.New(shard.Config{Shards: cfg.Backends, VNodes: cfg.VNodes})
	if err != nil {
		return nil, err
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		mux:    http.NewServeMux(),
		client: client,
		sem:    make(chan struct{}, cfg.MaxInFlight),

		spans:   reqtrace.NewRing(cfg.TraceRing, 0),
		ids:     reqtrace.NewIDGen(),
		tracker: slo.NewTracker(cfg.SLO, cfg.Metrics, "router_"),
		obs:     make(map[string]*endpointObs),
		now:     time.Now,

		mRequests:  cfg.Metrics.Counter("router_requests_total"),
		mErrors:    cfg.Metrics.Counter("router_errors_total"),
		mRejected:  cfg.Metrics.Counter("router_rejected_total"),
		mTimeouts:  cfg.Metrics.Counter("router_timeouts_total"),
		mProxied:   cfg.Metrics.Counter("router_proxied_total"),
		mFanouts:   cfg.Metrics.Counter("router_fanouts_total"),
		mInflight:  cfg.Metrics.Gauge("router_in_flight"),
		mLatencyMS: cfg.Metrics.Histogram("router_latency_ms", LatencyBuckets),
	}
	rt.routes()
	rt.http = &http.Server{Handler: rt.mux}
	return rt, nil
}

func (rt *Router) routes() {
	for _, rp := range []struct{ pattern, endpoint string }{
		{"POST /v1/mine", "mine"},
		{"POST /v1/profile/update", "profile_update"},
		{"POST /v1/schedule", "schedule"},
		{"POST /v1/simulate", "simulate"},
		{"POST /v1/fleet/ingest", "ingest"},
	} {
		rt.mux.HandleFunc(rp.pattern, rt.limited(rp.endpoint, rt.handleRouted))
	}
	rt.mux.HandleFunc("POST /v1/fleet/ingest:batch", rt.limited("ingest_batch", rt.handleIngestBatch))
	rt.mux.HandleFunc("POST /v1/schedule:batch", rt.limited("schedule_batch", rt.handleScheduleBatch))
	rt.mux.HandleFunc("GET /v1/fleet/report", rt.limited("fleet_report", rt.handleFleetReport))
	rt.mux.HandleFunc("GET /v1/fleet/devices", rt.limited("fleet_devices", rt.handleFleetDevices))
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /debug/requests", handleDebugRequests(rt.spans))
}

// ServeHTTP makes the router usable under httptest without a listener.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Ring exposes the placement ring (read-only; the Ring is immutable).
func (rt *Router) Ring() *shard.Ring { return rt.ring }

func (rt *Router) workers() int {
	if rt.cfg.Parallelism > 0 {
		return rt.cfg.Parallelism
	}
	return parallel.DefaultWorkers()
}

// limited is the router's request spine: request-ID assignment and
// propagation, admission, deadline, span capture, RED metrics, SLO
// tracking and logging — the same contract as the daemon's.
func (rt *Router) limited(endpoint string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	ep := newEndpointObs(rt.cfg.Metrics, "router_", endpoint)
	rt.obs[endpoint] = ep
	return func(w http.ResponseWriter, r *http.Request) {
		arrive := rt.now()
		reqID, hop := reqtrace.Incoming(r.Header)
		if reqID == "" {
			reqID = rt.ids.Next()
		}
		w.Header().Set(reqtrace.HeaderRequestID, reqID)
		rt.mRequests.Inc()
		ep.requests.Inc()
		sp := reqtrace.Span{RequestID: reqID, Role: "router", Endpoint: endpoint,
			Method: r.Method, Path: r.URL.Path, Hop: hop}
		select {
		case rt.sem <- struct{}{}:
		default:
			rt.mRejected.Inc()
			writeError(w, &apiError{Code: http.StatusTooManyRequests,
				Kind: "overloaded", Msg: "too many requests in flight"})
			rt.finish(ep, sp, w.Header(), http.StatusTooManyRequests, "overloaded", 0, arrive, arrive)
			return
		}
		rt.mInflight.Set(float64(rt.inflight.Add(1)))
		ep.enter()
		start := rt.now()
		defer func() {
			<-rt.sem
			rt.mInflight.Set(float64(rt.inflight.Add(-1)))
			ep.exit()
		}()

		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
		defer cancel()
		ctx = reqtrace.WithRequestID(ctx, reqID)
		sw := &statusWriter{ResponseWriter: w}
		err := h(sw, r.WithContext(ctx))
		rt.mLatencyMS.Observe(float64(rt.now().Sub(start).Milliseconds()))
		errKind := ""
		if err != nil {
			rt.mErrors.Inc()
			var ae *apiError
			switch {
			case errors.As(err, &ae):
			case errors.Is(err, context.DeadlineExceeded):
				rt.mTimeouts.Inc()
				ae = &apiError{Code: http.StatusGatewayTimeout,
					Kind: "timeout", Msg: "request deadline exceeded"}
			default:
				ae = &apiError{Code: http.StatusInternalServerError,
					Kind: "internal", Msg: err.Error()}
			}
			writeError(sw, ae)
			errKind = ae.Kind
		}
		rt.finish(ep, sp, sw.Header(), sw.status, errKind, sw.bytes, arrive, start)
	}
}

// finish is the router half of Server.finish: span, RED, SLO, slow
// line and the access-log line (role "router", with the routed shard
// from the X-Netmaster-Shard response header when one was chosen).
func (rt *Router) finish(ep *endpointObs, sp reqtrace.Span, hdr http.Header, status int, errKind string, bytes int, arrive, start time.Time) {
	end := rt.now()
	sp.Status = status
	sp.ErrKind = errKind
	sp.Shard = hdr.Get(reqtrace.HeaderShard)
	sp.Cache = hdr.Get("X-Netmaster-Cache")
	sp.QueueWaitMS = durMS(start.Sub(arrive))
	sp.HandleMS = durMS(end.Sub(start))
	sp.TotalMS = durMS(end.Sub(arrive))
	sp.Bytes = bytes
	ep.finish(status, sp.TotalMS)
	rt.tracker.Observe(sp.TotalMS, status >= 500)
	rt.spans.Record(sp)
	if rt.cfg.SlowRequest > 0 && end.Sub(arrive) >= rt.cfg.SlowRequest {
		emitLog(rt.cfg.LogWriter, slowLine{SlowRequest: sp})
	}
	emitLog(rt.cfg.LogWriter, accessLine{
		Role: "router", Method: sp.Method, Path: sp.Path, Status: status, Bytes: bytes,
		Millis: end.Sub(arrive).Milliseconds(), InFlight: rt.inflight.Load(),
		RequestID: sp.RequestID, Shard: sp.Shard, Cache: sp.Cache, QueueWaitMS: sp.QueueWaitMS,
	})
}

// routeProbe is a loose view of any /v1/* request body: just the fields
// that can carry a routing key.
type routeProbe struct {
	DeviceID  string `json:"device_id"`
	ProfileID string `json:"profile_id"`
	Gen       *struct {
		User string `json:"user"`
	} `json:"gen"`
	Trace *struct {
		UserID string `json:"user_id"`
	} `json:"trace"`
}

// routeKey extracts the placement key for a single-device request. An
// explicit X-Netmaster-Route-Key header wins; then device_id, the gen
// user, the inline trace's user, the profile ID, and finally the raw
// body bytes (a stable, if arbitrary, assignment). profile_id ranks
// below the user keys because a profile ID alone cannot prove which
// user it belongs to — callers that schedule by bare profile_id against
// a router should pin affinity with the header (docs/api.md).
func routeKey(r *http.Request, body []byte) string {
	if k := r.Header.Get("X-Netmaster-Route-Key"); k != "" {
		return k
	}
	var p routeProbe
	if json.Unmarshal(body, &p) == nil {
		switch {
		case p.DeviceID != "":
			return p.DeviceID
		case p.Gen != nil && p.Gen.User != "":
			return p.Gen.User
		case p.Trace != nil && p.Trace.UserID != "":
			return p.Trace.UserID
		case p.ProfileID != "":
			return p.ProfileID
		}
	}
	return string(body)
}

// errShard is the typed answer for an unreachable or misbehaving shard.
func errShard(backend string, err error) *apiError {
	return &apiError{Code: http.StatusBadGateway, Kind: "bad_gateway",
		Msg: fmt.Sprintf("shard %s: %v", backend, err)}
}

// handleRouted forwards a single-device request verbatim to the shard
// that owns its routing key and relays the response.
func (rt *Router) handleRouted(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return &apiError{Code: http.StatusBadRequest, Kind: "bad_request", Msg: err.Error()}
	}
	backend := rt.ring.Owner(routeKey(r, body))
	// The chosen shard rides back on the response (and so into the span
	// and access log) even when the proxy attempt fails.
	w.Header().Set(reqtrace.HeaderShard, backend)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return errShard(backend, err)
	}
	req.Header.Set("Content-Type", "application/json")
	reqtrace.Propagate(req.Header, reqtrace.RequestID(r.Context()), 1)
	resp, err := rt.client.Do(req)
	if err != nil {
		return errShard(backend, err)
	}
	defer resp.Body.Close()
	rt.mProxied.Inc()
	for _, h := range []string{"Content-Type", "X-Netmaster-Cache", "X-Netmaster-Idempotent-Replay", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// Past this point the status is on the wire; a copy failure only
	// means the client went away.
	io.Copy(w, resp.Body)
	return nil
}

// getJSON fetches one shard URL into out. hop is the fan-out leg index
// stamped on the sub-request (with the context's request ID) so the
// shard's span correlates back to the routed request.
func (rt *Router) getJSON(ctx context.Context, backend, path string, out any, hop int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+path, nil)
	if err != nil {
		return err
	}
	reqtrace.Propagate(req.Header, reqtrace.RequestID(ctx), hop)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

// postJSON posts in to one shard URL and decodes the 200 body into
// out. hop stamps the fan-out leg as in getJSON.
func (rt *Router) postJSON(ctx context.Context, backend, path string, in, out any, hop int) (http.Header, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, backend+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	reqtrace.Propagate(req.Header, reqtrace.RequestID(ctx), hop)
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return resp.Header, json.Unmarshal(body, out)
}

// shardDumps fans GET /v1/fleet/devices out to every shard and returns
// the union in sorted-ID order. A device reported by two shards is a
// placement violation and fails the read (kind "shard_conflict") —
// merging would silently double-count it.
func (rt *Router) shardDumps(ctx context.Context, query string) ([]DeviceDump, error) {
	shards := rt.ring.Shards()
	rt.mFanouts.Inc()
	per, err := parallel.MapNCtx(ctx, rt.workers(), len(shards), func(i int) ([]DeviceDump, error) {
		var fd FleetDevicesResponse
		if err := rt.getJSON(ctx, shards[i], "/v1/fleet/devices"+query, &fd, i+1); err != nil {
			return nil, errShard(shards[i], err)
		}
		return fd.Devices, nil
	})
	if err != nil {
		return nil, err
	}
	owner := make(map[string]string)
	var all []DeviceDump
	for i, dumps := range per {
		for _, d := range dumps {
			if prev, dup := owner[d.DeviceID]; dup {
				return nil, &apiError{Code: http.StatusBadGateway, Kind: "shard_conflict",
					Msg: fmt.Sprintf("device %s reported by both %s and %s", d.DeviceID, prev, shards[i])}
			}
			owner[d.DeviceID] = shards[i]
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].DeviceID < all[j].DeviceID })
	return all, nil
}

func (rt *Router) handleFleetReport(w http.ResponseWriter, r *http.Request) error {
	q := url.Values{}
	if m := r.URL.Query().Get("model"); m != "" {
		q.Set("model", m)
	}
	query := ""
	if len(q) > 0 {
		query = "?" + q.Encode()
	}
	dumps, err := rt.shardDumps(r.Context(), query)
	if err != nil {
		return err
	}
	doc, err := fleetDocFromDumps(rt.workers(), dumps)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, doc)
}

func (rt *Router) handleFleetDevices(w http.ResponseWriter, r *http.Request) error {
	q := url.Values{}
	if m := r.URL.Query().Get("model"); m != "" {
		q.Set("model", m)
	}
	if rep := r.URL.Query().Get("reports"); rep != "" {
		q.Set("reports", rep)
	}
	query := ""
	if len(q) > 0 {
		query = "?" + q.Encode()
	}
	dumps, err := rt.shardDumps(r.Context(), query)
	if err != nil {
		return err
	}
	if dumps == nil {
		dumps = []DeviceDump{}
	}
	return writeJSON(w, http.StatusOK, FleetDevicesResponse{Devices: dumps})
}

// handleMetrics mirrors the daemon's /metrics scopes: "fleet" merges
// every shard's ingested devices (byte-identical to a single node's
// ?scope=fleet over the same cohort), "self" is the router's own
// registry, and the default is both. The additional "serve" scope
// merges the serve-tier process registries instead — the router's own
// router_* series plus every shard's server_* series, folded through
// the same exactly-associative merge, so per-endpoint latency
// histograms sum bucket-wise across shards and two scrapes of
// identical state render byte-identical text. ?format=json&scope=self
// returns the raw registry snapshot, as on the daemon.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	if r.URL.Query().Get("format") == "json" {
		if scope := r.URL.Query().Get("scope"); scope != "self" {
			writeError(w, &apiError{Code: http.StatusBadRequest, Kind: "bad_request",
				Msg: "format=json requires scope=self"})
			return
		}
		writeJSON(w, http.StatusOK, rt.cfg.Metrics.Snapshot())
		return
	}
	self := telemetry.Device{ID: "router", Snapshot: rt.cfg.Metrics.Snapshot()}
	fleet := func() ([]telemetry.Device, error) {
		dumps, err := rt.shardDumps(ctx, "?reports=0")
		if err != nil {
			return nil, err
		}
		var devs []telemetry.Device
		for _, d := range dumps {
			if d.Metrics != nil {
				devs = append(devs, telemetry.Device{ID: d.DeviceID, Snapshot: *d.Metrics})
			}
		}
		return devs, nil
	}
	var devs []telemetry.Device
	var err error
	switch scope := r.URL.Query().Get("scope"); scope {
	case "", "all":
		devs, err = fleet()
		devs = append([]telemetry.Device{self}, devs...)
	case "fleet":
		devs, err = fleet()
	case "self":
		devs = []telemetry.Device{self}
	case "serve":
		devs, err = rt.serveRegistries(ctx)
	default:
		writeError(w, &apiError{Code: http.StatusBadRequest, Kind: "bad_request",
			Msg: fmt.Sprintf("unknown metrics scope %q (want all, fleet, self or serve)", scope)})
		return
	}
	if err == nil {
		var agg *telemetry.Agg
		agg, err = telemetry.Aggregate(devs...)
		if err == nil {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			telemetry.WriteProm(w, "netmaster_", agg.Export())
			return
		}
	}
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = &apiError{Code: http.StatusInternalServerError, Kind: "internal", Msg: err.Error()}
	}
	writeError(w, ae)
}

// serveRegistries gathers the serve-tier process registries — the
// router's own plus every shard's (fetched as raw JSON snapshots) —
// one telemetry device per process, keyed by shard URL. Aggregating
// them merges per-endpoint latency histograms bucket-exactly, because
// every process uses the shared LatencyBuckets bounds. Neither this
// scrape nor the shards' /metrics handlers pass through the limited
// spine, so scraping never perturbs the counters being read — two
// scrapes of identical state are byte-identical.
func (rt *Router) serveRegistries(ctx context.Context) ([]telemetry.Device, error) {
	shards := rt.ring.Shards()
	per, err := parallel.MapNCtx(ctx, rt.workers(), len(shards), func(i int) (telemetry.Device, error) {
		var snap metrics.Snapshot
		if err := rt.getJSON(ctx, shards[i], "/metrics?format=json&scope=self", &snap, i+1); err != nil {
			return telemetry.Device{}, errShard(shards[i], err)
		}
		return telemetry.Device{ID: shards[i], Snapshot: snap}, nil
	})
	if err != nil {
		return nil, err
	}
	return append([]telemetry.Device{{ID: "router", Snapshot: rt.cfg.Metrics.Snapshot()}}, per...), nil
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	shards := rt.ring.Shards()
	h := RouterHealthResponse{Status: "ok", Shards: make([]ShardHealth, len(shards)), InFlight: rt.InFlight()}
	var mu sync.Mutex
	parallel.ForEachN(rt.workers(), len(shards), func(i int) error {
		var sh HealthResponse
		if err := rt.getJSON(ctx, shards[i], "/healthz", &sh, i+1); err != nil {
			h.Shards[i] = ShardHealth{Shard: shards[i], Status: "unreachable", Error: err.Error()}
			return nil
		}
		h.Shards[i] = ShardHealth{Shard: shards[i], Status: sh.Status, Devices: sh.Devices}
		mu.Lock()
		h.Devices += sh.Devices
		mu.Unlock()
		return nil
	})
	for _, sh := range h.Shards {
		if sh.Status != "ok" {
			h.Status = "degraded"
			break
		}
	}
	if st := rt.tracker.Status(); st.Status != "" {
		h.SLO = &st
	}
	writeJSON(w, http.StatusOK, h)
}

// handleIngestBatch partitions the batch by device owner, fans
// sub-batches out, and stitches per-item results back into request
// order. Sub-batch idempotency keys derive deterministically from the
// caller's request_id and the shard's position in the sorted shard
// list, so a retried router batch deduplicates at every shard.
func (rt *Router) handleIngestBatch(w http.ResponseWriter, r *http.Request) error {
	var req BatchIngestRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Items) == 0 {
		return &apiError{Code: http.StatusBadRequest, Kind: "bad_request", Msg: "items must be non-empty"}
	}
	results := make([]BatchIngestResult, len(req.Items))
	byShard := make(map[string][]int)
	for i := range req.Items {
		results[i].DeviceID = req.Items[i].DeviceID
		if req.Items[i].DeviceID == "" {
			results[i].Error = &BatchItemError{Kind: "bad_request", Msg: "device_id must be set"}
			continue
		}
		owner := rt.ring.Owner(req.Items[i].DeviceID)
		byShard[owner] = append(byShard[owner], i)
	}
	shards := make([]string, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Strings(shards)

	rt.mFanouts.Inc()
	devices := atomic.Int64{}
	allReplayed := atomic.Bool{}
	allReplayed.Store(len(shards) > 0)
	err := parallel.ForEachNCtx(r.Context(), rt.workers(), len(shards), func(si int) error {
		idxs := byShard[shards[si]]
		sub := BatchIngestRequest{Items: make([]IngestRequest, len(idxs))}
		if req.RequestID != "" {
			sub.RequestID = req.RequestID + "#" + strconv.Itoa(si)
		}
		for j, i := range idxs {
			sub.Items[j] = req.Items[i]
		}
		var subResp BatchIngestResponse
		hdr, perr := rt.postJSON(r.Context(), shards[si], "/v1/fleet/ingest:batch", &sub, &subResp, si+1)
		if perr != nil {
			if r.Context().Err() != nil {
				return r.Context().Err()
			}
			e := errShard(shards[si], perr)
			for _, i := range idxs {
				results[i].Error = &BatchItemError{Kind: e.Kind, Msg: e.Msg}
			}
			allReplayed.Store(false)
			return nil
		}
		if len(subResp.Results) != len(idxs) {
			e := errShard(shards[si], fmt.Errorf("returned %d results for %d items", len(subResp.Results), len(idxs)))
			for _, i := range idxs {
				results[i].Error = &BatchItemError{Kind: e.Kind, Msg: e.Msg}
			}
			allReplayed.Store(false)
			return nil
		}
		for j, i := range idxs {
			results[i] = subResp.Results[j]
		}
		devices.Add(int64(subResp.Devices))
		if hdr.Get("X-Netmaster-Idempotent-Replay") != "true" {
			allReplayed.Store(false)
		}
		return nil
	})
	if err != nil {
		return err
	}

	resp := BatchIngestResponse{RequestID: req.RequestID, Devices: int(devices.Load()), Results: results}
	for i := range results {
		if results[i].Error == nil {
			results[i].OK = true
			resp.Accepted++
		} else {
			results[i].OK = false
			resp.Failed++
		}
	}
	if req.RequestID != "" && allReplayed.Load() {
		w.Header().Set("X-Netmaster-Idempotent-Replay", "true")
	}
	return writeJSON(w, http.StatusOK, resp)
}

// scheduleItemKey is routeKey's precedence for a decoded schedule item.
func scheduleItemKey(it *ScheduleRequest) string {
	switch {
	case it.DeviceID != "":
		return it.DeviceID
	case it.Gen != nil && it.Gen.User != "":
		return it.Gen.User
	case it.Trace != nil && it.Trace.UserID != "":
		return it.Trace.UserID
	case it.ProfileID != "":
		return it.ProfileID
	}
	b, err := json.Marshal(it)
	if err != nil {
		return ""
	}
	return string(b)
}

func (rt *Router) handleScheduleBatch(w http.ResponseWriter, r *http.Request) error {
	var req BatchScheduleRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Items) == 0 {
		return &apiError{Code: http.StatusBadRequest, Kind: "bad_request", Msg: "items must be non-empty"}
	}
	results := make([]BatchScheduleResult, len(req.Items))
	byShard := make(map[string][]int)
	for i := range req.Items {
		results[i].DeviceID = req.Items[i].DeviceID
		owner := rt.ring.Owner(scheduleItemKey(&req.Items[i]))
		byShard[owner] = append(byShard[owner], i)
	}
	shards := make([]string, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Strings(shards)

	rt.mFanouts.Inc()
	err := parallel.ForEachNCtx(r.Context(), rt.workers(), len(shards), func(si int) error {
		idxs := byShard[shards[si]]
		sub := BatchScheduleRequest{Items: make([]ScheduleRequest, len(idxs))}
		for j, i := range idxs {
			sub.Items[j] = req.Items[i]
		}
		var subResp BatchScheduleResponse
		if _, perr := rt.postJSON(r.Context(), shards[si], "/v1/schedule:batch", &sub, &subResp, si+1); perr != nil {
			if r.Context().Err() != nil {
				return r.Context().Err()
			}
			e := errShard(shards[si], perr)
			for _, i := range idxs {
				results[i].Error = &BatchItemError{Kind: e.Kind, Msg: e.Msg}
			}
			return nil
		}
		if len(subResp.Results) != len(idxs) {
			e := errShard(shards[si], fmt.Errorf("returned %d results for %d items", len(subResp.Results), len(idxs)))
			for _, i := range idxs {
				results[i].Error = &BatchItemError{Kind: e.Kind, Msg: e.Msg}
			}
			return nil
		}
		for j, i := range idxs {
			results[i] = subResp.Results[j]
		}
		return nil
	})
	if err != nil {
		return err
	}
	resp := BatchScheduleResponse{Results: results}
	for i := range results {
		if results[i].OK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// Start opens the listener and serves until Shutdown.
func (rt *Router) Start() error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return fmt.Errorf("router: listen %s: %w", rt.cfg.Addr, err)
	}
	rt.ln = ln
	go rt.http.Serve(ln)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return rt.cfg.Addr
	}
	return rt.ln.Addr().String()
}

// Shutdown drains in-flight requests within the configured grace.
func (rt *Router) Shutdown(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, rt.cfg.ShutdownGrace)
	defer cancel()
	return rt.http.Shutdown(dctx)
}

// InFlight returns the number of requests currently being served.
func (rt *Router) InFlight() int64 { return rt.inflight.Load() }
