package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netmaster/internal/faults"
)

// postRaw posts a JSON body and returns the raw response (body read and
// closed) — for asserting exact bytes and headers.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIngestBatchPartialFailure: a batch with an invalid item answers
// 200 with a per-item error at that item's index; the valid items land,
// and the fleet report over them matches the offline pipeline.
func TestIngestBatchPartialFailure(t *testing.T) {
	ingests := replayCohort(t, 2)
	_, ts, c := testServer(t, nil)

	req := BatchIngestRequest{Items: []IngestRequest{ingests[0], {DeviceID: ""}, ingests[1]}}
	resp, err := c.IngestBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Failed != 1 || resp.Devices != 2 {
		t.Fatalf("batch ack = accepted %d, failed %d, devices %d; want 2/1/2",
			resp.Accepted, resp.Failed, resp.Devices)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results for 3 items", len(resp.Results))
	}
	if !resp.Results[0].OK || !resp.Results[2].OK {
		t.Errorf("valid items not OK: %+v", resp.Results)
	}
	if resp.Results[1].OK || resp.Results[1].Error == nil || resp.Results[1].Error.Kind != "bad_request" {
		t.Errorf("invalid item result = %+v, want bad_request error", resp.Results[1])
	}

	got := get(t, ts, "/v1/fleet/report")
	want := offlineFleetDoc(t, []IngestRequest{ingests[0], ingests[1]}, 1)
	if !bytes.Equal(got, want) {
		t.Error("report after batch ingest differs from offline aggregation")
	}
}

// TestIngestBatchEmptyRejected: an empty items array is an envelope
// error, not an empty success.
func TestIngestBatchEmptyRejected(t *testing.T) {
	_, ts, _ := testServer(t, nil)
	resp, _ := postRaw(t, ts, "/v1/fleet/ingest:batch", `{"items": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

// TestIngestBatchDedup: re-sending a request_id returns the original
// ack bytes with the replay header, and applies nothing the second
// time.
func TestIngestBatchDedup(t *testing.T) {
	ingests := replayCohort(t, 2)
	s, ts, _ := testServer(t, nil)
	body := mustJSON(t, BatchIngestRequest{RequestID: "batch-1", Items: ingests})

	first, firstBytes := postRaw(t, ts, "/v1/fleet/ingest:batch", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first send: status %d: %s", first.StatusCode, firstBytes)
	}
	if first.Header.Get("X-Netmaster-Idempotent-Replay") != "" {
		t.Error("first send carried the replay header")
	}
	devices := s.Devices()

	second, secondBytes := postRaw(t, ts, "/v1/fleet/ingest:batch", body)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("duplicate send: status %d", second.StatusCode)
	}
	if second.Header.Get("X-Netmaster-Idempotent-Replay") != "true" {
		t.Error("duplicate send missing X-Netmaster-Idempotent-Replay: true")
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Errorf("duplicate ack differs from original:\n%s\nvs\n%s", firstBytes, secondBytes)
	}
	if s.Devices() != devices {
		t.Errorf("duplicate batch changed the fleet: %d -> %d devices", devices, s.Devices())
	}
}

// ambiguousOnce completes one real round trip to the target path and
// then reports a transport error — the classic ambiguous failure where
// the server processed the request but the client cannot know it.
type ambiguousOnce struct {
	inner  http.RoundTripper
	path   string
	failed atomic.Bool
	trips  atomic.Int32
}

func (a *ambiguousOnce) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := a.inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if req.URL.Path == a.path {
		a.trips.Add(1)
		if !a.failed.Swap(true) {
			resp.Body.Close()
			return nil, fmt.Errorf("connection reset after response (simulated)")
		}
	}
	return resp, nil
}

// TestRetriedDuplicateBatchNotDoubleCounted is the idempotency
// contract end to end on a durable server: a batch whose ack is lost to
// an ambiguous transport error is retried (request_id set), the retry
// is acked from the journal-backed dedup cache, and the batch was
// journaled and applied exactly once.
func TestRetriedDuplicateBatchNotDoubleCounted(t *testing.T) {
	ingests := replayCohort(t, 2)
	s, ts, _, err := durableServer(t, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	amb := &ambiguousOnce{inner: http.DefaultTransport, path: "/v1/fleet/ingest:batch"}
	c := NewClient(ts.URL, &http.Client{Transport: amb}).
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	resp, err := c.IngestBatch(context.Background(), BatchIngestRequest{RequestID: "retry-1", Items: ingests})
	if err != nil {
		t.Fatalf("retried batch failed: %v", err)
	}
	if got := int(amb.trips.Load()); got != 2 {
		t.Errorf("made %d batch round trips, want 2 (original + retry)", got)
	}
	if resp.Accepted != len(ingests) || resp.Devices != len(ingests) {
		t.Errorf("ack = accepted %d, devices %d; want %d/%d",
			resp.Accepted, resp.Devices, len(ingests), len(ingests))
	}
	if s.Devices() != len(ingests) {
		t.Errorf("fleet holds %d devices after retried batch, want %d", s.Devices(), len(ingests))
	}
	// Exactly one journal append: the retry was deduplicated, not
	// re-applied.
	if got := s.cfg.Metrics.Snapshot().Counters["server_store_appends_total"]; got != 1 {
		t.Errorf("server_store_appends_total = %d, want 1", got)
	}
}

// TestNoRetryWithoutRequestID: the same ambiguous failure without an
// idempotency key must NOT be retried — the client surfaces the error
// after a single attempt instead of risking a double ingest.
func TestNoRetryWithoutRequestID(t *testing.T) {
	ingests := replayCohort(t, 2)
	_, ts, _ := testServer(t, nil)
	amb := &ambiguousOnce{inner: http.DefaultTransport, path: "/v1/fleet/ingest:batch"}
	c := NewClient(ts.URL, &http.Client{Transport: amb}).
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1})
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	_, err := c.IngestBatch(context.Background(), BatchIngestRequest{Items: ingests})
	if err == nil {
		t.Fatal("ambiguous transport error without request_id did not surface")
	}
	if got := int(amb.trips.Load()); got != 1 {
		t.Errorf("made %d batch round trips, want 1 (no retry without idempotency key)", got)
	}
	// 429 is still retried without a request_id: a shed request was
	// definitively not processed.
	var hits atomic.Int32
	flaky := httptest.NewServer(flakyHandler(t, []int{429}, &hits))
	defer flaky.Close()
	var slept []time.Duration
	rc := retryClient(flaky, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1}, &slept)
	if _, err := rc.IngestBatch(context.Background(), BatchIngestRequest{Items: ingests}); err != nil {
		t.Fatalf("batch through a 429-then-200 server: %v", err)
	}
	if hits.Load() != 2 {
		t.Errorf("429 path made %d attempts, want 2", hits.Load())
	}
}

// TestBatchDedupSurvivesRestart: the dedup cache is journaled, so a
// duplicate arriving after a restart — journal replay — or after two
// restarts — snapshot — still replays the original ack bytes.
func TestBatchDedupSurvivesRestart(t *testing.T) {
	ingests := replayCohort(t, 2)
	dir := t.TempDir()
	body := mustJSON(t, BatchIngestRequest{RequestID: "crash-1", Items: ingests})

	_, ts1, _, err := durableServer(t, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp1, ack1 := postRaw(t, ts1, "/v1/fleet/ingest:batch", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first send: status %d: %s", resp1.StatusCode, ack1)
	}
	ts1.Close()

	for restart := 1; restart <= 2; restart++ {
		s, ts, _, err := durableServer(t, dir, nil)
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		if s.Devices() != len(ingests) {
			t.Fatalf("restart %d recovered %d devices, want %d", restart, s.Devices(), len(ingests))
		}
		resp, ack := postRaw(t, ts, "/v1/fleet/ingest:batch", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart %d duplicate: status %d", restart, resp.StatusCode)
		}
		if resp.Header.Get("X-Netmaster-Idempotent-Replay") != "true" {
			t.Errorf("restart %d duplicate missing replay header", restart)
		}
		if !bytes.Equal(ack, ack1) {
			t.Errorf("restart %d duplicate ack differs from the original", restart)
		}
		if s.Devices() != len(ingests) {
			t.Errorf("restart %d duplicate changed the fleet to %d devices", restart, s.Devices())
		}
		appends := s.cfg.Metrics.Snapshot().Counters["server_store_appends_total"]
		if appends != 0 {
			t.Errorf("restart %d duplicate appended %d journal records, want 0", restart, appends)
		}
		ts.Close()
	}
}

// TestIngestBatchReadOnlyDegradation: when the journal dies, accepted
// items fail with per-item read_only errors — the envelope still
// answers 200, nothing is acked that was not fsynced, and nothing is
// applied.
func TestIngestBatchReadOnlyDegradation(t *testing.T) {
	ingests := replayCohort(t, 2)
	probe, err := faults.NewFS(nil, faults.FSConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := durableServer(t, t.TempDir(), probe); err != nil {
		t.Fatal(err)
	}
	bootOps := probe.Writes()

	ffs, err := faults.NewFS(nil, faults.FSConfig{Seed: 2, CrashAfterWrites: bootOps + 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _, c, err := durableServer(t, t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.IngestBatch(context.Background(),
		BatchIngestRequest{RequestID: "ro-1", Items: []IngestRequest{ingests[0], {DeviceID: ""}, ingests[1]}})
	if err != nil {
		t.Fatalf("batch on dead journal: envelope error %v, want 200 with item errors", err)
	}
	if resp.Accepted != 0 || resp.Failed != 3 {
		t.Fatalf("ack = accepted %d, failed %d; want 0/3", resp.Accepted, resp.Failed)
	}
	for i, want := range []string{"read_only", "bad_request", "read_only"} {
		if resp.Results[i].OK || resp.Results[i].Error == nil || resp.Results[i].Error.Kind != want {
			t.Errorf("item %d = %+v, want %s error", i, resp.Results[i], want)
		}
	}
	if s.Devices() != 0 {
		t.Errorf("read-only batch applied %d devices", s.Devices())
	}
	// The failed attempt must not poison the dedup cache: the key stays
	// replayable-free so a later retry against a recovered daemon is a
	// real commit, not a replay of the failure.
	if _, ok := s.batchAcks.Get("ro-1"); ok {
		t.Error("failed batch cached an ack for its request_id")
	}
}

// TestScheduleBatchMatchesSequential: each batch item's response equals
// the response of the same request sent alone, independent of
// parallelism, and invalid items fail only themselves.
func TestScheduleBatchMatchesSequential(t *testing.T) {
	acts := []ActivityJSON{{ID: 1, TimeSecs: 97200, Bytes: 200000, ActiveSecs: 5}}
	items := []ScheduleRequest{
		{DeviceID: "dev-a", Gen: &GenSpec{User: "volunteer1", Days: 7}, Day: 1, Activities: acts},
		{Day: -1, Gen: &GenSpec{User: "volunteer1", Days: 7}, Activities: acts},
		{ProfileID: "no-such-profile", Day: 1, Activities: acts},
		{DeviceID: "dev-b", Gen: &GenSpec{User: "volunteer2", Days: 7}, Day: 2, Activities: acts},
	}
	for _, par := range []int{1, 8} {
		_, _, c := testServer(t, func(cfg *Config) { cfg.Parallelism = par })
		resp, err := c.ScheduleBatch(context.Background(), BatchScheduleRequest{Items: items})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Succeeded != 2 || resp.Failed != 2 {
			t.Fatalf("parallelism %d: succeeded %d, failed %d; want 2/2", par, resp.Succeeded, resp.Failed)
		}
		if resp.Results[1].Error == nil || resp.Results[1].Error.Kind != "bad_request" {
			t.Errorf("negative-day item = %+v, want bad_request", resp.Results[1])
		}
		if resp.Results[2].Error == nil || resp.Results[2].Error.Kind != "unknown_profile" {
			t.Errorf("unknown-profile item = %+v, want unknown_profile", resp.Results[2])
		}
		for _, i := range []int{0, 3} {
			if !resp.Results[i].OK || resp.Results[i].Response == nil {
				t.Fatalf("parallelism %d: item %d not OK: %+v", par, i, resp.Results[i])
			}
			single, err := c.Schedule(context.Background(), items[i])
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, resp.Results[i].Response) != mustJSON(t, single) {
				t.Errorf("parallelism %d: batch item %d differs from the same request sent alone", par, i)
			}
			if resp.Results[i].Response.DeviceID != items[i].DeviceID {
				t.Errorf("item %d device echo = %q, want %q", i, resp.Results[i].Response.DeviceID, items[i].DeviceID)
			}
		}
	}
}

// TestBatchRejectsUnknownFields: the batch decoder keeps the API's
// strictness — typos fail loudly.
func TestBatchRejectsUnknownFields(t *testing.T) {
	_, ts, _ := testServer(t, nil)
	resp, body := postRaw(t, ts, "/v1/fleet/ingest:batch", `{"itemz": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error *apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == nil || e.Error.Kind != "bad_json" {
		t.Errorf("unknown field error = %s, want kind bad_json", body)
	}
}
