package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"netmaster/internal/metrics"
)

// TestConcurrentLoad hammers the server with a mixed workload from many
// goroutines (run under -race in CI). The in-flight bound is sized
// above the client concurrency, so every request must be admitted: zero
// 429s, zero 5xx, and the warm cache must be doing the mining work.
func TestConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	reg := metrics.NewRegistry()
	s, ts, _ := testServer(t, func(cfg *Config) {
		cfg.MaxInFlight = 32
		cfg.Metrics = reg
	})

	// Warm the profile cache and capture the reference bodies every
	// concurrent response must match.
	mineBody := `{"gen": {"user": "volunteer1", "days": 7}}`
	schedBody := `{"gen": {"user": "volunteer1", "days": 7}, "day": 1, "activities": [{"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5}]}`
	wantMine := string(post(t, ts, "/v1/mine", mineBody))
	wantSched := string(post(t, ts, "/v1/schedule", schedBody))

	const goroutines = 16
	const perG = 80 // 16*80 = 1280 requests
	var (
		wg       sync.WaitGroup
		status   [600]atomic.Int64
		mismatch atomic.Int64
	)
	do := func(method, path, body string) int {
		var resp *http.Response
		var err error
		if method == "GET" {
			resp, err = http.Get(ts.URL + path)
		} else {
			resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		b := new(strings.Builder)
		if _, err := io.Copy(b, resp.Body); err != nil {
			t.Error(err)
			return 0
		}
		if resp.StatusCode == http.StatusOK {
			switch path {
			case "/v1/mine":
				if b.String() != wantMine {
					mismatch.Add(1)
				}
			case "/v1/schedule":
				if b.String() != wantSched {
					mismatch.Add(1)
				}
			}
		}
		return resp.StatusCode
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var code int
				switch i % 4 {
				case 0:
					code = do("POST", "/v1/mine", mineBody)
				case 1:
					code = do("POST", "/v1/schedule", schedBody)
				case 2:
					code = do("GET", "/healthz", "")
				case 3:
					code = do("POST", "/v1/fleet/ingest",
						fmt.Sprintf(`{"device_id": "dev%d", "trace_header": {}}`, g))
				}
				if code >= 100 && code < 600 {
					status[code].Add(1)
				}
				if got := s.InFlight(); got > int64(32) {
					t.Errorf("in-flight %d exceeds MaxInFlight", got)
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(0)
	for code := 100; code < 600; code++ {
		n := status[code].Load()
		total += n
		if code >= 500 && n > 0 {
			t.Errorf("%d responses with status %d", n, code)
		}
		if code == http.StatusTooManyRequests && n > 0 {
			t.Errorf("%d requests shed despite in-flight bound above client concurrency", n)
		}
	}
	if want := int64(goroutines * perG); total != want {
		t.Errorf("accounted %d responses, sent %d", total, want)
	}
	if n := mismatch.Load(); n > 0 {
		t.Errorf("%d responses differed from the single-threaded reference bytes", n)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("in-flight %d after drain", got)
	}

	snap := reg.Snapshot()
	if hits := snap.Counters["server_cache_hits_total"]; hits == 0 {
		t.Error("no cache hits under repeated identical mining")
	}
	// /healthz is served outside the limited() spine, so only 3 of the
	// 4 workload legs (plus the two warm-up calls) are counted.
	if want := int64(goroutines*perG*3/4 + 2); snap.Counters["server_requests_total"] != want {
		t.Errorf("requests_total %d, want %d", snap.Counters["server_requests_total"], want)
	}
	if snap.Gauges["server_in_flight"] != 0 {
		t.Errorf("in-flight gauge %v after drain", snap.Gauges["server_in_flight"])
	}
}

// TestBackpressure429 fills the admission semaphore by hand and checks
// the next request is shed with 429 + Retry-After, then admitted again
// once a slot frees.
func TestBackpressure429(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts, c := testServer(t, func(cfg *Config) {
		cfg.MaxInFlight = 2
		cfg.Metrics = reg
	})
	s.sem <- struct{}{}
	s.sem <- struct{}{}

	resp, err := http.Post(ts.URL+"/v1/mine", "application/json",
		strings.NewReader(`{"gen": {"user": "volunteer1", "days": 7}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with full semaphore, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if reg.Snapshot().Counters["server_rejected_total"] != 1 {
		t.Error("rejection not counted")
	}

	<-s.sem
	<-s.sem
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("request rejected after slots freed: %v", err)
	}
}
