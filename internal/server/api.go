// Wire types for the netmaster-serve HTTP/JSON API. Every response is a
// pure function of the request body: no wall-clock times, no random
// identifiers, maps marshalled with sorted keys. That keeps response
// bytes identical across runs and across -parallelism settings, which
// the golden tests pin. Cache status travels in the X-Netmaster-Cache
// header, never in the body, for the same reason.
package server

import (
	"fmt"

	"netmaster/internal/device"
	"netmaster/internal/metrics"
	"netmaster/internal/reqtrace"
	"netmaster/internal/simtime"
	"netmaster/internal/slo"
	"netmaster/internal/synth"
	"netmaster/internal/telemetry"
	"netmaster/internal/telemetry/analyze"
	"netmaster/internal/trace"
	"netmaster/internal/tracing"
)

// GenSpec asks the server to synthesise a cohort trace instead of
// shipping one inline: User names a synth cohort member (user1…user8,
// volunteer1…volunteer3) and Days the trace length. Generation is
// seeded per user, so the same spec always yields the same trace.
type GenSpec struct {
	User string `json:"user"`
	Days int    `json:"days"`
	// WiFiCoverage optionally overlays Wi-Fi AP visibility on the
	// synthesised trace: the fraction of each day covered, in [0, 1].
	// The overlay draws from its own seeded stream, so the demand side
	// of the trace is byte-identical across coverage values.
	WiFiCoverage float64 `json:"wifi_coverage,omitempty"`
}

// resolveTrace materialises the request's trace: inline wins, otherwise
// the gen spec is synthesised. The returned spec is non-nil only on the
// gen path (callers use it to derive a matching history trace).
func resolveTrace(tr *trace.Trace, gen *GenSpec) (*trace.Trace, *synth.UserSpec, error) {
	if tr != nil {
		if err := tr.Validate(); err != nil {
			return nil, nil, &apiError{Code: 400, Kind: "bad_trace", Msg: err.Error()}
		}
		return tr, nil, nil
	}
	if gen == nil {
		return nil, nil, &apiError{Code: 400, Kind: "bad_request", Msg: "need trace or gen"}
	}
	if gen.Days <= 0 {
		return nil, nil, &apiError{Code: 400, Kind: "bad_request", Msg: "gen.days must be positive"}
	}
	if gen.WiFiCoverage < 0 || gen.WiFiCoverage > 1 {
		return nil, nil, &apiError{Code: 400, Kind: "bad_request", Msg: "gen.wifi_coverage must be in [0, 1]"}
	}
	for _, spec := range append(synth.MotivationCohort(), synth.EvalCohort()...) {
		if spec.ID == gen.User {
			spec.WiFiCoverage = gen.WiFiCoverage
			t, err := synth.Generate(spec, gen.Days)
			if err != nil {
				return nil, nil, err
			}
			return t, &spec, nil
		}
	}
	return nil, nil, &apiError{Code: 400, Kind: "bad_request",
		Msg: fmt.Sprintf("no cohort user named %q", gen.User)}
}

// apiError is the uniform error body: {"error": {"kind": ..., "message": ...}}.
type apiError struct {
	Code int    `json:"-"`
	Kind string `json:"kind"`
	Msg  string `json:"message"`
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Msg) }

// MineConfig overrides habit.DefaultConfig field by field; nil pointers
// keep the default so a zero threshold stays expressible.
type MineConfig struct {
	SlotWidthSecs       int64    `json:"slot_width_secs,omitempty"`
	WeekdayThreshold    *float64 `json:"weekday_threshold,omitempty"`
	WeekendThreshold    *float64 `json:"weekend_threshold,omitempty"`
	RecencyHalfLifeDays float64  `json:"recency_half_life_days,omitempty"`
}

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	Trace  *trace.Trace `json:"trace,omitempty"`
	Gen    *GenSpec     `json:"gen,omitempty"`
	Config *MineConfig  `json:"config,omitempty"`
}

// DayTypeSummary is the mined picture of one day type.
type DayTypeSummary struct {
	Days int `json:"days"`
	// UseProb and NetProb are the per-slot Pr[u(ti)] and Pr[n(ti)]
	// vectors (Eq. 2 and 3), one entry per slot of day.
	UseProb []float64 `json:"use_prob"`
	NetProb []float64 `json:"net_prob"`
	// ActiveSlots are the predicted user-active intervals for a
	// representative day of this type (the first such day in week 0).
	ActiveSlots []simtime.Interval `json:"active_slots"`
}

// MineResponse is the body of a successful POST /v1/mine. ProfileID is
// the content hash under which the profile is cached; later
// /v1/schedule calls may pass it instead of re-shipping the trace.
type MineResponse struct {
	ProfileID     string         `json:"profile_id"`
	UserID        string         `json:"user_id"`
	SlotWidthSecs int64          `json:"slot_width_secs"`
	SpecialApps   []trace.AppID  `json:"special_apps"`
	Weekday       DayTypeSummary `json:"weekday"`
	Weekend       DayTypeSummary `json:"weekend"`
}

// ProfileUpdateRequest is the body of POST /v1/profile/update: fold new
// trace days into a cached profile's sketch instead of re-mining from
// scratch. ProfileID names the base profile (a previous mine's or
// update's cache key); empty starts a fresh sketch, in which case
// Config may override the mining defaults (with a base profile the
// sketch's own config applies and Config must be absent). The new days
// come inline (Trace) or synthesised (Gen); Day, when set, folds only
// that trace-local day — the O(new events) incremental path — while nil
// folds the whole trace.
type ProfileUpdateRequest struct {
	ProfileID string       `json:"profile_id,omitempty"`
	Config    *MineConfig  `json:"config,omitempty"`
	Trace     *trace.Trace `json:"trace,omitempty"`
	Gen       *GenSpec     `json:"gen,omitempty"`
	Day       *int         `json:"day,omitempty"`
}

// ProfileUpdateResponse is the body of a successful POST
// /v1/profile/update. ProfileID is the updated profile's cache key (a
// sketch-state hash — the same ID a full mine over the concatenated
// trace would produce); BaseProfileID echoes the request's base, if
// any. Days counts every day folded into the sketch so far.
type ProfileUpdateResponse struct {
	ProfileID     string         `json:"profile_id"`
	BaseProfileID string         `json:"base_profile_id,omitempty"`
	Days          int            `json:"days"`
	UserID        string         `json:"user_id"`
	SlotWidthSecs int64          `json:"slot_width_secs"`
	SpecialApps   []trace.AppID  `json:"special_apps"`
	Weekday       DayTypeSummary `json:"weekday"`
	Weekend       DayTypeSummary `json:"weekend"`
}

// NetworksJSON widens a schedule or simulate request to the
// multi-network surface. Absent (the default), the request and its
// response are byte-identical to the single-radio API.
type NetworksJSON struct {
	WiFi *WiFiNetworkJSON `json:"wifi,omitempty"`
}

// WiFiNetworkJSON enables the Wi-Fi NIC for a request.
type WiFiNetworkJSON struct {
	// Model names the NIC power model; "wifi" (the default and only
	// value today) is the libpowertutor-derived 802.11 model.
	Model string `json:"model,omitempty"`
	// Coverage lists AP-visibility windows in trace-relative seconds.
	// On /v1/schedule the packer consults it per slot: a slot whose
	// whole interval is covered gets Wi-Fi candidates. On /v1/simulate
	// a non-empty list overrides the trace's own recorded coverage.
	Coverage []simtime.Interval `json:"coverage,omitempty"`
}

// ActivityJSON is one screen-off activity to schedule.
type ActivityJSON struct {
	ID         int     `json:"id"`
	TimeSecs   int64   `json:"time_secs"`
	Bytes      int64   `json:"bytes"`
	ActiveSecs float64 `json:"active_secs"`
	DeferOnly  bool    `json:"defer_only,omitempty"`
}

// ScheduleRequest is the body of POST /v1/schedule. The habit profile
// comes from ProfileID (a previous mine's cache key) or is mined on the
// fly from Trace/Gen; Day selects which day's predicted active slots
// form the knapsack slot set U.
type ScheduleRequest struct {
	// DeviceID optionally names the device this schedule is for. It is
	// echoed in the response and is the routing key in -router mode and
	// in /v1/schedule:batch items.
	DeviceID   string         `json:"device_id,omitempty"`
	ProfileID  string         `json:"profile_id,omitempty"`
	Trace      *trace.Trace   `json:"trace,omitempty"`
	Gen        *GenSpec       `json:"gen,omitempty"`
	MineConfig *MineConfig    `json:"mine_config,omitempty"`
	Day        int            `json:"day"`
	Model      string         `json:"model,omitempty"` // "3g" (default) or "lte"
	Activities []ActivityJSON `json:"activities"`
	// Scheduler overrides; zero keeps the paper's defaults.
	Eps               float64  `json:"eps,omitempty"`
	BandwidthBps      float64  `json:"bandwidth_bps,omitempty"`
	PenaltyRateWattEq *float64 `json:"penalty_rate_watt_eq,omitempty"`
	// Networks widens the packing to the dual-radio choice set: each
	// covered slot also carries a Wi-Fi candidate and assignments gain
	// per-decision network attribution. Nil keeps the cellular-only
	// packing and its response bytes.
	Networks *NetworksJSON `json:"networks,omitempty"`
}

// AssignmentJSON is one placement in the returned packing.
type AssignmentJSON struct {
	ActivityID int              `json:"activity_id"`
	SlotIndex  int              `json:"slot_index"`
	Slot       simtime.Interval `json:"slot"`
	TargetSecs int64            `json:"target_secs"`
	Bytes      int64            `json:"bytes"`
	Profit     float64          `json:"profit"`
	Saved      float64          `json:"saved"`
	Penalty    float64          `json:"penalty"`
	// Network is the radio the placement targets: "wifi" on a covered
	// slot whose Wi-Fi candidate won the packing, absent for cellular.
	Network string `json:"network,omitempty"`
}

// ScheduleResponse is the body of a successful POST /v1/schedule.
type ScheduleResponse struct {
	DeviceID     string             `json:"device_id,omitempty"`
	ProfileID    string             `json:"profile_id"`
	Day          int                `json:"day"`
	ActiveSlots  []simtime.Interval `json:"active_slots"`
	Assignments  []AssignmentJSON   `json:"assignments"`
	Unscheduled  []int              `json:"unscheduled"`
	TotalSaved   float64            `json:"total_saved"`
	TotalPenalty float64            `json:"total_penalty"`
	Objective    float64            `json:"objective"`
	SlotLoad     []int64            `json:"slot_load"`
}

// SimulateRequest is the body of POST /v1/simulate: replay one policy
// over a trace and report its metrics against the baseline.
type SimulateRequest struct {
	Trace *trace.Trace `json:"trace,omitempty"`
	Gen   *GenSpec     `json:"gen,omitempty"`
	// Policy is baseline, netmaster, oracle, delay, batch, online (the
	// event-driven middleware replayed over the trace) or wifi-offload
	// (run as recorded, covered transfers on the Wi-Fi NIC; needs the
	// Networks block).
	Policy string `json:"policy"`
	Model  string `json:"model,omitempty"` // "3g" (default) or "lte"
	// DelayIntervalSecs parameterises policy "delay" (default 600).
	DelayIntervalSecs int64 `json:"delay_interval_secs,omitempty"`
	// BatchSize parameterises policy "batch" (default 3).
	BatchSize int `json:"batch_size,omitempty"`
	// HistoryDays, on the gen path, sizes the pre-collected history
	// the netmaster policy mines before day 0 (default 14).
	HistoryDays int `json:"history_days,omitempty"`
	// Networks enables the Wi-Fi NIC: the policy may offload onto it
	// (policies "netmaster" and "online" become dual-radio; policy
	// "wifi-offload" requires it) and the result metrics gain a per-NIC
	// breakdown. The baseline stays all-cellular so savings remain
	// comparable with single-radio runs.
	Networks *NetworksJSON `json:"networks,omitempty"`
}

// MetricsJSON flattens device.Metrics onto the wire.
type MetricsJSON struct {
	Policy          string  `json:"policy"`
	EnergyJ         float64 `json:"energy_j"`
	RadioOnSecs     float64 `json:"radio_on_secs"`
	TailEnergyJ     float64 `json:"tail_energy_j"`
	Promotions      int     `json:"promotions"`
	WakeUps         int     `json:"wake_ups"`
	WakeEnergyJ     float64 `json:"wake_energy_j"`
	BytesDown       int64   `json:"bytes_down"`
	BytesUp         int64   `json:"bytes_up"`
	AvgDownRateBps  float64 `json:"avg_down_rate_bps"`
	AvgUpRateBps    float64 `json:"avg_up_rate_bps"`
	PeakDownRateBps float64 `json:"peak_down_rate_bps"`
	PeakUpRateBps   float64 `json:"peak_up_rate_bps"`
	Interactions    int     `json:"interactions"`
	WrongDecisions  int     `json:"wrong_decisions"`
	Deferred        int     `json:"deferred"`
	MeanDeferSecs   float64 `json:"mean_defer_secs"`
	MaxDeferSecs    float64 `json:"max_defer_secs"`
	// Per-NIC breakdown of EnergyJ/RadioOnSecs, present only when a
	// dual-radio run actually metered work on the Wi-Fi NIC.
	// WiFiAssociations counts NIC power-ups from the low-power state.
	WiFiEnergyJ      float64 `json:"wifi_energy_j,omitempty"`
	WiFiOnSecs       float64 `json:"wifi_on_secs,omitempty"`
	WiFiAssociations int     `json:"wifi_associations,omitempty"`
}

func metricsJSON(m device.Metrics) MetricsJSON {
	return MetricsJSON{
		Policy:          m.PolicyName,
		EnergyJ:         m.Radio.EnergyJ,
		RadioOnSecs:     m.Radio.RadioOnSecs,
		TailEnergyJ:     m.Radio.TailEnergyJ,
		Promotions:      m.Radio.Promotions,
		WakeUps:         m.WakeUps,
		WakeEnergyJ:     m.WakeEnergyJ,
		BytesDown:       m.BytesDown,
		BytesUp:         m.BytesUp,
		AvgDownRateBps:  m.AvgDownRateBps,
		AvgUpRateBps:    m.AvgUpRateBps,
		PeakDownRateBps: m.PeakDownRateBps,
		PeakUpRateBps:   m.PeakUpRateBps,
		Interactions:    m.Interactions,
		WrongDecisions:  m.WrongDecisions,
		Deferred:        m.Deferred,
		MeanDeferSecs:   m.MeanDeferSecs,
		MaxDeferSecs:    m.MaxDeferSecs,

		WiFiEnergyJ:      m.WiFi.EnergyJ,
		WiFiOnSecs:       m.WiFi.RadioOnSecs,
		WiFiAssociations: m.WiFi.Promotions,
	}
}

// SimulateResponse is the body of a successful POST /v1/simulate.
type SimulateResponse struct {
	UserID        string      `json:"user_id"`
	Days          int         `json:"days"`
	Model         string      `json:"model"`
	Baseline      MetricsJSON `json:"baseline"`
	Result        MetricsJSON `json:"result"`
	EnergySaving  float64     `json:"energy_saving"`
	RadioOnSaving float64     `json:"radio_on_saving"`
}

// IngestRequest is the body of POST /v1/fleet/ingest: one device's
// observability artifacts, exactly what netmaster-analyze reads from an
// -obs-dir on disk. Re-ingesting a device ID replaces its snapshot.
type IngestRequest struct {
	DeviceID string            `json:"device_id"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
	Header   tracing.Header    `json:"trace_header"`
	Events   []tracing.Event   `json:"events,omitempty"`
}

// IngestResponse acknowledges an ingest with the resulting fleet size.
type IngestResponse struct {
	DeviceID string `json:"device_id"`
	Devices  int    `json:"devices"`
}

// FleetReportResponse is the body of GET /v1/fleet/report — the same
// document netmaster-analyze writes offline, so a live report over
// ingested devices is byte-comparable with the batch pipeline.
type FleetReportResponse struct {
	Metrics  telemetry.FleetSnapshot `json:"metrics"`
	Analysis analyze.FleetReport     `json:"analysis"`
}

// DeviceDump is one device's share of GET /v1/fleet/devices: the raw
// ingested metrics plus (unless reports=0) the analyzed per-device
// report. Dumps are the shard half of a routed fleet report — the
// router concatenates every shard's dumps and folds them exactly as a
// single node folds its own memory.
type DeviceDump struct {
	DeviceID string                `json:"device_id"`
	Metrics  *metrics.Snapshot     `json:"metrics,omitempty"`
	Report   *analyze.DeviceReport `json:"report,omitempty"`
	// DeferSecs carries the report's raw per-deferral waits, which do
	// not serialise inside Report: the fleet fold pools the exact values
	// to recompute cohort quantiles, so a routed report stays
	// byte-identical to a single-node run.
	DeferSecs []float64 `json:"defer_secs,omitempty"`
}

// FleetDevicesResponse is the body of GET /v1/fleet/devices, devices in
// sorted-ID order.
type FleetDevicesResponse struct {
	Devices []DeviceDump `json:"devices"`
}

// StoreStatus summarises the durable state layer on /healthz; absent
// when the daemon runs without a -state-dir.
type StoreStatus struct {
	// Mode is "read_write" while the journal is healthy, "read_only"
	// once an append failed and the daemon degraded to serving reads.
	Mode string `json:"mode"`
	// Seq is the last journal sequence number assigned.
	Seq uint64 `json:"seq"`
	// AppendsSinceCompact is the journal length beyond the snapshot.
	AppendsSinceCompact int `json:"appends_since_compact"`
}

// HealthResponse is the body of GET /healthz. Status is "ok", or
// "read_only" when the durable store has degraded. SLO is present only
// when the daemon was configured with SLO targets; its inner status
// flips to "burning" while an objective is being missed.
type HealthResponse struct {
	Status   string       `json:"status"`
	Devices  int          `json:"devices"`
	InFlight int64        `json:"in_flight"`
	Store    *StoreStatus `json:"store,omitempty"`
	SLO      *slo.Status  `json:"slo,omitempty"`
}

// DebugRequestsResponse is the body of GET /debug/requests on the
// daemon and the router: the recent-span ring plus the retained
// slowest spans, newest/slowest first. Capacity, Total and Dropped
// describe the ring itself, so a scraper can tell how much history the
// dump covers.
type DebugRequestsResponse struct {
	Capacity int             `json:"capacity"`
	Total    uint64          `json:"total"`
	Dropped  uint64          `json:"dropped"`
	Recent   []reqtrace.Span `json:"recent"`
	Slowest  []reqtrace.Span `json:"slowest"`
}
