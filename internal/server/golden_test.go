package server

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netmaster/internal/parallel"
)

// The golden files pin each endpoint's response body byte for byte over
// pinned synthetic fixtures. Responses are pure functions of request
// bodies — no wall-clock, no randomness, sorted map keys — so a diff
// means the API's behaviour changed, not noise. Regenerate deliberately
// with
//
//	go test ./internal/server -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// post returns the raw response body for a POST with the given JSON.
func post(t *testing.T, ts *httptest.Server, path, body string) []byte {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

func get(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// TestGoldenEndpoints pins the response bytes of every JSON endpoint
// for pinned gen fixtures, and asserts they are identical at every
// worker-pool width and on repeat (warm-cache) calls.
func TestGoldenEndpoints(t *testing.T) {
	was := parallel.DefaultWorkers()
	defer parallel.SetDefaultWorkers(was)

	cases := []struct {
		golden string
		method string
		path   string
		body   string
	}{
		{"mine_volunteer1.golden", "POST", "/v1/mine",
			`{"gen": {"user": "volunteer1", "days": 14}}`},
		{"mine_user4_lowthresh.golden", "POST", "/v1/mine",
			`{"gen": {"user": "user4", "days": 7}, "config": {"weekday_threshold": 0.3, "weekend_threshold": 0.3}}`},
		{"schedule_volunteer1_day1.golden", "POST", "/v1/schedule",
			`{"gen": {"user": "volunteer1", "days": 14}, "day": 1, "activities": [
			   {"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5},
			   {"id": 2, "time_secs": 100800, "bytes": 50000, "active_secs": 2},
			   {"id": 3, "time_secs": 104400, "bytes": 1000000, "active_secs": 12}]}`},
		{"simulate_volunteer2_netmaster.golden", "POST", "/v1/simulate",
			`{"gen": {"user": "volunteer2", "days": 7}, "policy": "netmaster"}`},
		{"simulate_user1_delay.golden", "POST", "/v1/simulate",
			`{"gen": {"user": "user1", "days": 7}, "policy": "delay", "delay_interval_secs": 300, "model": "lte"}`},
		{"schedule_volunteer1_day1_wifi.golden", "POST", "/v1/schedule",
			`{"gen": {"user": "volunteer1", "days": 14}, "day": 1,
			   "networks": {"wifi": {"coverage": [{"Start": 0, "End": 1209600}]}},
			   "activities": [
			   {"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5},
			   {"id": 2, "time_secs": 100800, "bytes": 50000, "active_secs": 2},
			   {"id": 3, "time_secs": 104400, "bytes": 1000000, "active_secs": 12}]}`},
		{"simulate_volunteer2_dual.golden", "POST", "/v1/simulate",
			`{"gen": {"user": "volunteer2", "days": 7, "wifi_coverage": 0.6}, "policy": "netmaster", "networks": {"wifi": {}}}`},
		{"simulate_user1_offload.golden", "POST", "/v1/simulate",
			`{"gen": {"user": "user1", "days": 7, "wifi_coverage": 0.8}, "policy": "wifi-offload", "networks": {"wifi": {"model": "wifi"}}}`},
		{"healthz.golden", "GET", "/healthz", ""},
	}

	// First pass at parallelism 1 establishes (or checks) the goldens;
	// the other widths and the repeat pass must match byte for byte.
	bodies := make(map[string][]byte)
	for _, workers := range []int{1, 8, 1} {
		parallel.SetDefaultWorkers(workers)
		_, ts, _ := testServer(t, nil)
		for _, tc := range cases {
			for pass := 0; pass < 2; pass++ { // cold then warm cache
				var b []byte
				if tc.method == "GET" {
					b = get(t, ts, tc.path)
				} else {
					b = post(t, ts, tc.path, tc.body)
				}
				if prev, ok := bodies[tc.golden]; ok {
					if !bytes.Equal(b, prev) {
						t.Errorf("%s: response changed at parallelism %d pass %d", tc.golden, workers, pass)
					}
					continue
				}
				bodies[tc.golden] = b
				checkGolden(t, tc.golden, b)
			}
		}
		ts.Close()
	}
}

// TestGoldenErrors pins the error body shape.
func TestGoldenErrors(t *testing.T) {
	_, ts, _ := testServer(t, nil)
	cases := []struct {
		golden string
		path   string
		body   string
		code   int
	}{
		{"err_no_trace.golden", "/v1/mine", `{}`, 400},
		{"err_bad_user.golden", "/v1/mine", `{"gen": {"user": "nobody", "days": 7}}`, 400},
		{"err_bad_policy.golden", "/v1/simulate", `{"gen": {"user": "user1", "days": 7}, "policy": "warp"}`, 400},
		{"err_unknown_profile.golden", "/v1/schedule",
			`{"profile_id": "sha256:beef", "activities": [{"id": 1, "time_secs": 60, "bytes": 1, "active_secs": 1}]}`, 404},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.golden, resp.StatusCode, tc.code)
		}
		checkGolden(t, tc.golden, b)
	}
}

// TestScheduleWiFiAttribution: a networks block whose coverage spans
// every slot must surface per-decision attribution — at least one
// assignment targets the Wi-Fi NIC — while the same request without the
// block stays byte-identical to the single-radio golden.
func TestScheduleWiFiAttribution(t *testing.T) {
	_, ts, _ := testServer(t, nil)
	acts := `"day": 1, "activities": [
	  {"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5},
	  {"id": 2, "time_secs": 100800, "bytes": 50000, "active_secs": 2},
	  {"id": 3, "time_secs": 104400, "bytes": 1000000, "active_secs": 12}]`
	dual := post(t, ts, "/v1/schedule",
		`{"gen": {"user": "volunteer1", "days": 14}, "networks": {"wifi": {"coverage": [{"Start": 0, "End": 1209600}]}}, `+acts+`}`)
	if !bytes.Contains(dual, []byte(`"network": "wifi"`)) {
		t.Errorf("full-coverage schedule carries no wifi attribution:\n%s", dual)
	}
	plain := post(t, ts, "/v1/schedule", `{"gen": {"user": "volunteer1", "days": 14}, `+acts+`}`)
	if bytes.Contains(plain, []byte(`"network"`)) {
		t.Errorf("single-radio schedule leaked a network field:\n%s", plain)
	}
	checkGolden(t, "schedule_volunteer1_day1.golden", plain)
}

// TestScheduleProfileIDEqualsInline: scheduling against a cached
// profile ID must produce exactly the bytes of scheduling with the gen
// spec inline.
func TestScheduleProfileIDEqualsInline(t *testing.T) {
	_, ts, c := testServer(t, nil)
	mine, err := c.Mine(context.Background(), MineRequest{Gen: &GenSpec{User: "volunteer1", Days: 14}})
	if err != nil {
		t.Fatal(err)
	}
	acts := `"day": 1, "activities": [{"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5}]`
	inline := post(t, ts, "/v1/schedule", `{"gen": {"user": "volunteer1", "days": 14}, `+acts+`}`)
	byID := post(t, ts, "/v1/schedule", fmt.Sprintf(`{"profile_id": %q, %s}`, mine.ProfileID, acts))
	if !bytes.Equal(inline, byID) {
		t.Errorf("profile_id schedule differs from inline schedule:\n%s\nvs\n%s", byID, inline)
	}
}
