// Package server is the long-running daemon face of the repository: the
// mining, scheduling, simulation and fleet-telemetry pipelines behind
// an HTTP/JSON API (cmd/netmaster-serve). Production posture:
//
//   - habit profiles are cached in an LRU keyed by sketch-state hash
//     (reached through cheap request-shape aliases), so repeated mining
//     of the same trace is one hash away and incremental updates via
//     POST /v1/profile/update cost O(new events);
//   - request fan-out goes through internal/parallel with a bounded
//     in-flight semaphore — overload answers 429, never queues without
//     bound;
//   - every request carries a deadline, cancelled down into the
//     scheduler and evaluator via ScheduleCtx/CompareCtx;
//   - SIGTERM drains in-flight requests before exit;
//   - request counts, errors, latency and cache traffic land in a
//     metrics.Registry (server_* names) served on /metrics in
//     Prometheus text format via telemetry.WriteProm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netmaster/internal/atomicfile"
	"netmaster/internal/cfgerr"
	"netmaster/internal/metrics"
	"netmaster/internal/parallel"
	"netmaster/internal/reqtrace"
	"netmaster/internal/slo"
	"netmaster/internal/store"
	"netmaster/internal/telemetry"
	"netmaster/internal/telemetry/analyze"
	"netmaster/internal/tracing"
)

// LatencyBuckets are the server_latency_ms histogram bounds.
var LatencyBuckets = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 30000}

// Config parameterises the daemon.
type Config struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0".
	Addr string
	// MaxInFlight bounds concurrently served API requests; excess
	// requests are answered 429 immediately (backpressure, not
	// queueing).
	MaxInFlight int
	// CacheSize is the habit-profile LRU capacity (entries). Zero
	// disables the cache; negative is invalid.
	CacheSize int
	// RequestTimeout is the per-request deadline, threaded as a
	// context into the mining, scheduling and simulation pipelines.
	RequestTimeout time.Duration
	// ShutdownGrace bounds the drain on SIGTERM: in-flight requests
	// get this long to finish before the listener is torn down.
	ShutdownGrace time.Duration
	// Parallelism caps the worker pool used by request fan-out; zero
	// keeps the process-wide default.
	Parallelism int
	// LogWriter receives one structured (JSON) line per request; nil
	// disables request logging.
	LogWriter io.Writer
	// Metrics receives server_* counters, gauges and histograms; nil
	// disables instrumentation (handles are nil-tolerant).
	Metrics *metrics.Registry
	// StateDir, when set, makes fleet ingests and profile updates
	// durable: a write-ahead journal plus snapshot compaction under
	// this directory, recovered on startup. Empty keeps the daemon
	// purely in-memory.
	StateDir string
	// StateFS overrides the filesystem the durable store writes
	// through; nil uses the real one. Tests inject faults.FS here.
	StateFS atomicfile.FS
	// CompactEvery is how many journal records accumulate before the
	// state is compacted into a snapshot; zero uses
	// DefaultCompactEvery.
	CompactEvery int
	// SlowRequest, when positive, emits a structured slow_request log
	// line (the request's full span) for any request whose total wall
	// time reaches the threshold. Zero disables slow-request capture.
	SlowRequest time.Duration
	// TraceRing is the /debug/requests recent-span ring capacity; zero
	// uses reqtrace.DefaultCapacity.
	TraceRing int
	// SLO configures online burn tracking against a p99 latency target
	// and an error-rate target, exposed as server_slo_* series and on
	// /healthz. The zero value disables tracking (and keeps /healthz
	// bodies unchanged).
	SLO slo.Config
}

// DefaultCompactEvery is the journal-records-per-snapshot compaction
// threshold when Config.CompactEvery is zero.
const DefaultCompactEvery = 256

// DefaultConfig returns production-shaped defaults (listener on an
// ephemeral localhost port, so tests and first runs never collide).
func DefaultConfig() Config {
	return Config{
		Addr:           "127.0.0.1:0",
		MaxInFlight:    64,
		CacheSize:      128,
		RequestTimeout: 30 * time.Second,
		ShutdownGrace:  5 * time.Second,
	}
}

// Validate checks the configuration, returning cfgerr field errors.
func (c *Config) Validate() error {
	var es cfgerr.Errors
	if c.Addr == "" {
		es = append(es, cfgerr.New("server.Config", "Addr", c.Addr, "must be set"))
	}
	if c.MaxInFlight <= 0 {
		es = append(es, cfgerr.New("server.Config", "MaxInFlight", c.MaxInFlight, "must be positive"))
	}
	if c.CacheSize < 0 {
		es = append(es, cfgerr.New("server.Config", "CacheSize", c.CacheSize, "must be non-negative"))
	}
	if c.RequestTimeout <= 0 {
		es = append(es, cfgerr.New("server.Config", "RequestTimeout", c.RequestTimeout, "must be positive"))
	}
	if c.ShutdownGrace <= 0 {
		es = append(es, cfgerr.New("server.Config", "ShutdownGrace", c.ShutdownGrace, "must be positive"))
	}
	if c.Parallelism < 0 {
		es = append(es, cfgerr.New("server.Config", "Parallelism", c.Parallelism, "must be non-negative"))
	}
	if c.CompactEvery < 0 {
		es = append(es, cfgerr.New("server.Config", "CompactEvery", c.CompactEvery, "must be non-negative"))
	}
	if c.StateDir != "" && c.CacheSize == 0 {
		es = append(es, cfgerr.New("server.Config", "CacheSize", c.CacheSize, "must be positive when StateDir is set (recovered profiles need a cache to live in)"))
	}
	if c.SlowRequest < 0 {
		es = append(es, cfgerr.New("server.Config", "SlowRequest", c.SlowRequest, "must be non-negative"))
	}
	if c.TraceRing < 0 {
		es = append(es, cfgerr.New("server.Config", "TraceRing", c.TraceRing, "must be non-negative"))
	}
	es = appendSLOErrors(es, c.SLO)
	return es.Err()
}

// appendSLOErrors folds a nested slo.Config validation into the
// caller's error list, keeping the slo.Config component name so the
// failing field stays unambiguous.
func appendSLOErrors(es cfgerr.Errors, cfg slo.Config) cfgerr.Errors {
	err := cfg.Validate()
	if err == nil {
		return es
	}
	var sub cfgerr.Errors
	if errors.As(err, &sub) {
		return append(es, sub...)
	}
	if fe, ok := cfgerr.Field(err); ok {
		return append(es, fe)
	}
	return es
}

// ingested is one device's artifacts as received on /v1/fleet/ingest.
type ingested struct {
	metrics *metrics.Snapshot
	header  tracing.Header
	events  []tracing.Event
}

// Server is the daemon: an http.Handler plus the state behind it.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	profiles  *lru // sketch-state profile ID → *profileEntry
	aliases   *lru // request-shape alias → profile ID
	batchAcks *lru // batch request_id → ack bytes (idempotent replay)

	fleetMu sync.Mutex
	fleet   map[string]ingested

	// Durable state (nil store without Config.StateDir). stateMu
	// serialises journal-append + in-memory apply + compaction so a
	// snapshot always covers exactly the records whose effects it holds.
	stateMu   sync.Mutex
	store     *store.Store
	persisted *lru // profile ID → sketch binary, the durably held set

	sem      chan struct{}
	inflight atomic.Int64

	// Request observability: span ring behind /debug/requests, edge
	// request-ID generation, SLO burn tracking, per-endpoint RED
	// handles, and an injectable clock so log/span tests can pin time.
	ring    *reqtrace.Ring
	ids     *reqtrace.IDGen
	tracker *slo.Tracker
	obs     map[string]*endpointObs
	now     func() time.Time

	// server_* instrumentation (nil-tolerant handles).
	mRequests  *metrics.Counter
	mErrors    *metrics.Counter
	mRejected  *metrics.Counter
	mTimeouts  *metrics.Counter
	mCacheHit  *metrics.Counter
	mCacheMiss *metrics.Counter
	mCacheEvic *metrics.Counter
	mProfHit   *metrics.Counter
	mProfMiss  *metrics.Counter
	mProfEvic  *metrics.Counter
	mInflight  *metrics.Gauge
	mLatencyMS *metrics.Histogram

	// server_store_* instrumentation, registered only with a StateDir.
	mStoreAppends  *metrics.Counter
	mStoreReplays  *metrics.Counter
	mStoreCompact  *metrics.Counter
	mStoreTorn     *metrics.Counter
	mStoreRecovery *metrics.Gauge
}

// New builds a Server from the config. The listener is not opened
// until Start (or ListenAndServe via cmd/netmaster-serve).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		profiles:  newLRU(cfg.CacheSize),
		aliases:   newLRU(cfg.CacheSize),
		batchAcks: newLRU(cfg.CacheSize),
		fleet:     make(map[string]ingested),
		sem:       make(chan struct{}, cfg.MaxInFlight),

		ring:    reqtrace.NewRing(cfg.TraceRing, 0),
		ids:     reqtrace.NewIDGen(),
		tracker: slo.NewTracker(cfg.SLO, cfg.Metrics, "server_"),
		obs:     make(map[string]*endpointObs),
		now:     time.Now,

		mRequests:  cfg.Metrics.Counter("server_requests_total"),
		mErrors:    cfg.Metrics.Counter("server_errors_total"),
		mRejected:  cfg.Metrics.Counter("server_rejected_total"),
		mTimeouts:  cfg.Metrics.Counter("server_timeouts_total"),
		mCacheHit:  cfg.Metrics.Counter("server_cache_hits_total"),
		mCacheMiss: cfg.Metrics.Counter("server_cache_misses_total"),
		mCacheEvic: cfg.Metrics.Counter("server_cache_evictions_total"),
		mProfHit:   cfg.Metrics.Counter("server_profile_cache_hits_total"),
		mProfMiss:  cfg.Metrics.Counter("server_profile_cache_misses_total"),
		mProfEvic:  cfg.Metrics.Counter("server_profile_cache_evictions_total"),
		mInflight:  cfg.Metrics.Gauge("server_in_flight"),
		mLatencyMS: cfg.Metrics.Histogram("server_latency_ms", LatencyBuckets),
	}
	s.persisted = newLRU(cfg.CacheSize)
	if cfg.StateDir != "" {
		s.mStoreAppends = cfg.Metrics.Counter("server_store_appends_total")
		s.mStoreReplays = cfg.Metrics.Counter("server_store_replays_total")
		s.mStoreCompact = cfg.Metrics.Counter("server_store_compactions_total")
		s.mStoreTorn = cfg.Metrics.Counter("server_store_torn_tails_total")
		s.mStoreRecovery = cfg.Metrics.Gauge("server_store_recovery_ms")
		if err := s.openStore(); err != nil {
			return nil, err
		}
	}
	s.routes()
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/mine", s.limited("mine", s.handleMine))
	s.mux.HandleFunc("POST /v1/profile/update", s.limited("profile_update", s.handleProfileUpdate))
	s.mux.HandleFunc("POST /v1/schedule", s.limited("schedule", s.handleSchedule))
	s.mux.HandleFunc("POST /v1/simulate", s.limited("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/fleet/ingest", s.limited("ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v1/fleet/ingest:batch", s.limited("ingest_batch", s.handleIngestBatch))
	s.mux.HandleFunc("POST /v1/schedule:batch", s.limited("schedule_batch", s.handleScheduleBatch))
	s.mux.HandleFunc("GET /v1/fleet/report", s.limited("fleet_report", s.handleFleetReport))
	s.mux.HandleFunc("GET /v1/fleet/devices", s.limited("fleet_devices", s.handleFleetDevices))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/requests", handleDebugRequests(s.ring))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeHTTP makes the server usable under httptest without a listener.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter records the status code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// limited wraps an API handler with the full request spine: request-ID
// assignment/propagation, semaphore admission (429 on overload),
// deadline, error mapping, span capture, RED metrics, SLO tracking and
// logging. endpoint keys the per-endpoint series and span records.
func (s *Server) limited(endpoint string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	ep := newEndpointObs(s.cfg.Metrics, "server_", endpoint)
	s.obs[endpoint] = ep
	return func(w http.ResponseWriter, r *http.Request) {
		arrive := s.now()
		// The edge mints the request ID; a propagated one (router hop)
		// wins. Either way the response echoes it immediately, so even
		// a 429 is correlatable.
		reqID, hop := reqtrace.Incoming(r.Header)
		if reqID == "" {
			reqID = s.ids.Next()
		}
		w.Header().Set(reqtrace.HeaderRequestID, reqID)
		s.mRequests.Inc()
		ep.requests.Inc()
		sp := reqtrace.Span{RequestID: reqID, Role: "server", Endpoint: endpoint,
			Method: r.Method, Path: r.URL.Path, Hop: hop}
		select {
		case s.sem <- struct{}{}:
		default:
			// Full house: shed immediately. Retry-After is advisory;
			// the bound is requests in flight, not a rate. Rejected
			// requests still span + count, so /debug/requests
			// reconciles exactly with server_requests_total.
			s.mRejected.Inc()
			writeError(w, &apiError{Code: http.StatusTooManyRequests,
				Kind: "overloaded", Msg: "too many requests in flight"})
			s.finish(ep, sp, w.Header(), http.StatusTooManyRequests, "overloaded", 0, arrive, arrive)
			return
		}
		s.mInflight.Set(float64(s.inflight.Add(1)))
		ep.enter()
		start := s.now()
		defer func() {
			<-s.sem
			s.mInflight.Set(float64(s.inflight.Add(-1)))
			ep.exit()
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = reqtrace.WithRequestID(ctx, reqID)
		sw := &statusWriter{ResponseWriter: w}
		err := h(sw, r.WithContext(ctx))
		s.mLatencyMS.Observe(float64(s.now().Sub(start).Milliseconds()))
		errKind := ""
		if err != nil {
			s.mErrors.Inc()
			var ae *apiError
			switch {
			case errors.As(err, &ae):
			case errors.Is(err, context.DeadlineExceeded):
				s.mTimeouts.Inc()
				ae = &apiError{Code: http.StatusGatewayTimeout,
					Kind: "timeout", Msg: "request deadline exceeded"}
			default:
				ae = &apiError{Code: http.StatusInternalServerError,
					Kind: "internal", Msg: err.Error()}
			}
			writeError(sw, ae)
			errKind = ae.Kind
		}
		s.finish(ep, sp, sw.Header(), sw.status, errKind, sw.bytes, arrive, start)
	}
}

// finish closes out one request: it completes the span and records it,
// lands the RED and SLO observations, and emits the slow-request and
// access-log lines. start equals arrive on the 429 path (the request
// never reached a handler).
func (s *Server) finish(ep *endpointObs, sp reqtrace.Span, hdr http.Header, status int, errKind string, bytes int, arrive, start time.Time) {
	end := s.now()
	sp.Status = status
	sp.ErrKind = errKind
	sp.Cache = hdr.Get("X-Netmaster-Cache")
	if st := s.storeStatus(); st != nil {
		sp.StoreMode = st.Mode
	}
	sp.QueueWaitMS = durMS(start.Sub(arrive))
	sp.HandleMS = durMS(end.Sub(start))
	sp.TotalMS = durMS(end.Sub(arrive))
	sp.Bytes = bytes
	ep.finish(status, sp.TotalMS)
	s.tracker.Observe(sp.TotalMS, status >= 500)
	s.ring.Record(sp)
	if s.cfg.SlowRequest > 0 && end.Sub(arrive) >= s.cfg.SlowRequest {
		emitLog(s.cfg.LogWriter, slowLine{SlowRequest: sp})
	}
	emitLog(s.cfg.LogWriter, accessLine{
		Method: sp.Method, Path: sp.Path, Status: status, Bytes: bytes,
		Millis: end.Sub(arrive).Milliseconds(), InFlight: s.inflight.Load(),
		RequestID: sp.RequestID, Cache: sp.Cache, QueueWaitMS: sp.QueueWaitMS,
	})
}

// writeJSON writes an indented, deterministic JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *apiError) {
	// Overload (429), upstream failure (502) and degraded-store (503)
	// answers are retryable by contract: advertise that uniformly, so
	// every such response carries Retry-After whichever path produced
	// it. An already-set header (e.g. relayed from a shard) wins.
	switch e.Code {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Error *apiError `json:"error"`
	}{e})
}

// decode parses a JSON request body, rejecting unknown fields so typos
// fail loudly instead of silently keeping defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{Code: http.StatusBadRequest, Kind: "bad_json", Msg: err.Error()}
	}
	return nil
}

// Start opens the listener and serves until Shutdown. It returns once
// the listener is accepting, with the bound address in Addr().
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	go s.http.Serve(ln)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains in-flight requests within the configured grace and
// tears the listener down.
func (s *Server) Shutdown(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, s.cfg.ShutdownGrace)
	defer cancel()
	return s.http.Shutdown(dctx)
}

// InFlight returns the number of API requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Devices returns the current ingested fleet size.
func (s *Server) Devices() int {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	return len(s.fleet)
}

// workers is the bounded fan-out width for per-request parallel work.
func (s *Server) workers() int {
	if s.cfg.Parallelism > 0 {
		return s.cfg.Parallelism
	}
	return parallel.DefaultWorkers()
}

// deviceDumps snapshots the ingested fleet in sorted-ID order: each
// device's raw metrics plus (optionally) its analyzed report. This is
// the shard's contribution to a routed fleet report — the router fetches
// dumps from every shard and folds them with fleetDocFromDumps.
func (s *Server) deviceDumps(model string, withReports bool) ([]DeviceDump, error) {
	acfg := analyze.DefaultConfig()
	m, err := powerModel(model)
	if err != nil {
		return nil, err
	}
	acfg.ActivePowerMW = m.ActivePowerMW

	s.fleetMu.Lock()
	ids := make([]string, 0, len(s.fleet))
	for id := range s.fleet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ins := make([]analyze.DeviceInput, len(ids))
	dumps := make([]DeviceDump, len(ids))
	for i, id := range ids {
		d := s.fleet[id]
		ins[i] = analyze.DeviceInput{ID: id, Header: d.header, Events: d.events, Metrics: d.metrics}
		dumps[i] = DeviceDump{DeviceID: id, Metrics: d.metrics}
	}
	s.fleetMu.Unlock()

	if withReports {
		reports, err := parallel.MapN(s.workers(), len(ins), func(i int) (analyze.DeviceReport, error) {
			return analyze.Device(ins[i], acfg), nil
		})
		if err != nil {
			return nil, err
		}
		for i := range dumps {
			dumps[i].Report = &reports[i]
			dumps[i].DeferSecs = reports[i].DeferSecs()
		}
	}
	return dumps, nil
}

// fleetDoc assembles the live fleet report: the exact structure
// netmaster-analyze produces offline, so the two are byte-comparable.
func (s *Server) fleetDoc(model string) (FleetReportResponse, error) {
	dumps, err := s.deviceDumps(model, true)
	if err != nil {
		return FleetReportResponse{}, err
	}
	return fleetDocFromDumps(s.workers(), dumps)
}

// fleetDocFromDumps folds per-device dumps into the fleet document.
// The same fold serves one node's memory and a router's N shards: the
// telemetry merge is exactly associative and analyze.Fleet sorts its
// inputs, so the result is independent of how devices were grouped —
// which is what makes a routed report byte-identical to a single-node
// run.
func fleetDocFromDumps(workers int, dumps []DeviceDump) (FleetReportResponse, error) {
	var mdevs []telemetry.Device
	reports := make([]analyze.DeviceReport, 0, len(dumps))
	for _, d := range dumps {
		if d.Metrics != nil {
			mdevs = append(mdevs, telemetry.Device{ID: d.DeviceID, Snapshot: *d.Metrics})
		}
		if d.Report != nil {
			rep := *d.Report
			if rep.DeferSecs() == nil {
				// Rebuilt from JSON: the raw waits ride next to the
				// report, not inside it.
				rep.SetDeferSecs(d.DeferSecs)
			}
			reports = append(reports, rep)
		}
	}
	agg, err := telemetry.AggregateParallel(workers, mdevs)
	if err != nil {
		return FleetReportResponse{}, err
	}
	return FleetReportResponse{Metrics: agg.Export(), Analysis: analyze.Fleet(reports)}, nil
}
