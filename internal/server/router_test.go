package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"netmaster/internal/faults"
	"netmaster/internal/metrics"
)

// routed is an N-shard serve tier under test: the shard daemons, the
// router in front of them, and a client pointed at the router.
type routed struct {
	shards  []*Server
	shardTS []*httptest.Server
	rt      *Router
	ts      *httptest.Server
	client  *Client
}

// routerFixture boots n in-memory shards and a router across them.
func routerFixture(t *testing.T, n int, mutate func(*Config), rmutate func(*RouterConfig)) *routed {
	t.Helper()
	f := &routed{}
	backends := make([]string, n)
	for i := 0; i < n; i++ {
		s, ts, _ := testServer(t, mutate)
		f.shards = append(f.shards, s)
		f.shardTS = append(f.shardTS, ts)
		backends[i] = ts.URL
	}
	cfg := DefaultRouterConfig()
	cfg.Backends = backends
	cfg.Metrics = metrics.NewRegistry()
	if rmutate != nil {
		rmutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.ts = httptest.NewServer(rt)
	t.Cleanup(f.ts.Close)
	f.client = NewClient(f.ts.URL, nil)
	return f
}

// stressCohort clones the replay cohort's ingest bodies onto n synthetic
// device IDs so the fleet spreads across every shard.
func stressCohort(t *testing.T, n int) []IngestRequest {
	t.Helper()
	base := replayCohort(t, 4)
	out := make([]IngestRequest, 0, len(base)+n)
	out = append(out, base...)
	for i := 0; i < n; i++ {
		clone := base[i%len(base)]
		clone.DeviceID = fmt.Sprintf("stress/dev-%03d", i)
		out = append(out, clone)
	}
	return out
}

// TestRouterReportByteIdenticalToSingleNode is the sharding tier's
// correctness contract: the same cohort ingested into one daemon and
// into three daemons behind the router yields byte-identical
// /v1/fleet/report documents and byte-identical fleet-scope Prometheus
// expositions — across fan-out parallelism and ingest order, mixing
// single-device and batch ingestion on the routed side.
func TestRouterReportByteIdenticalToSingleNode(t *testing.T) {
	cohort := stressCohort(t, 18)
	for _, par := range []int{1, 8} {
		for _, shuffled := range []bool{false, true} {
			t.Run(fmt.Sprintf("parallelism=%d/shuffled=%v", par, shuffled), func(t *testing.T) {
				order := make([]int, len(cohort))
				for i := range order {
					order[i] = i
				}
				if shuffled {
					rand.New(rand.NewSource(7)).Shuffle(len(order), func(i, j int) {
						order[i], order[j] = order[j], order[i]
					})
				}

				_, soloTS, soloC := testServer(t, func(c *Config) { c.Parallelism = par })
				for _, i := range order {
					if _, err := soloC.Ingest(context.Background(), cohort[i]); err != nil {
						t.Fatal(err)
					}
				}

				f := routerFixture(t, 3,
					func(c *Config) { c.Parallelism = par },
					func(rc *RouterConfig) { rc.Parallelism = par })
				// Half the cohort through single-device proxying, the rest
				// as one routed batch.
				half := len(order) / 2
				for _, i := range order[:half] {
					if _, err := f.client.Ingest(context.Background(), cohort[i]); err != nil {
						t.Fatal(err)
					}
				}
				batch := BatchIngestRequest{RequestID: "equiv-1"}
				for _, i := range order[half:] {
					batch.Items = append(batch.Items, cohort[i])
				}
				bresp, err := f.client.IngestBatch(context.Background(), batch)
				if err != nil {
					t.Fatal(err)
				}
				if bresp.Failed != 0 {
					t.Fatalf("routed batch failed %d items: %+v", bresp.Failed, bresp.Results)
				}

				for _, path := range []string{
					"/v1/fleet/report",
					"/v1/fleet/report?model=lte",
					"/metrics?scope=fleet",
				} {
					want := get(t, soloTS, path)
					got := get(t, f.ts, path)
					if !bytes.Equal(got, want) {
						t.Errorf("routed %s differs from the single-node document", path)
					}
				}
			})
		}
	}
}

// TestRouterPlacementMatchesRing: every ingested device lands on
// exactly the shard the ring names, and on no other.
func TestRouterPlacementMatchesRing(t *testing.T) {
	f := routerFixture(t, 3, nil, nil)
	cohort := stressCohort(t, 27)
	want := make(map[string]map[string]bool) // shard URL → device set
	for _, ing := range cohort {
		owner := f.rt.Ring().Owner(ing.DeviceID)
		if want[owner] == nil {
			want[owner] = map[string]bool{}
		}
		want[owner][ing.DeviceID] = true
		if _, err := f.client.Ingest(context.Background(), ing); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for i := range f.shards {
		sc := NewClient(f.shardTS[i].URL, nil)
		fd, err := sc.FleetDevices(context.Background(), "", false)
		if err != nil {
			t.Fatal(err)
		}
		total += len(fd.Devices)
		for _, d := range fd.Devices {
			if !want[f.shardTS[i].URL][d.DeviceID] {
				t.Errorf("device %s landed on %s, ring owner is %s",
					d.DeviceID, f.shardTS[i].URL, f.rt.Ring().Owner(d.DeviceID))
			}
		}
	}
	if total != len(cohort) {
		t.Errorf("shards hold %d devices in total, want %d", total, len(cohort))
	}
}

// TestRouterSchedulePassthrough: a single-device request through the
// router answers byte-identically to a standalone daemon — the proxy
// adds routing, not behaviour.
func TestRouterSchedulePassthrough(t *testing.T) {
	f := routerFixture(t, 3, nil, nil)
	_, soloTS, _ := testServer(t, nil)
	body := `{"device_id": "dev-a", "gen": {"user": "volunteer1", "days": 7}, "day": 1,
	          "activities": [{"id": 1, "time_secs": 97200, "bytes": 200000, "active_secs": 5}]}`
	want := post(t, soloTS, "/v1/schedule", body)
	got := post(t, f.ts, "/v1/schedule", body)
	if !bytes.Equal(got, want) {
		t.Errorf("routed /v1/schedule differs from a standalone daemon:\n%s\nvs\n%s", got, want)
	}
}

// TestRouterBatchDedupAcrossShards: a retried routed batch deduplicates
// at every shard — the derived sub-batch keys are stable — and the
// router reassembles the identical envelope with the replay header.
func TestRouterBatchDedupAcrossShards(t *testing.T) {
	f := routerFixture(t, 3, nil, nil)
	body := mustJSON(t, BatchIngestRequest{RequestID: "router-dedup-1", Items: stressCohort(t, 12)})

	first, ack1 := postRaw(t, f.ts, "/v1/fleet/ingest:batch", body)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first routed batch: status %d: %s", first.StatusCode, ack1)
	}
	devices := 0
	for _, s := range f.shards {
		devices += s.Devices()
	}

	second, ack2 := postRaw(t, f.ts, "/v1/fleet/ingest:batch", body)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("duplicate routed batch: status %d", second.StatusCode)
	}
	if second.Header.Get("X-Netmaster-Idempotent-Replay") != "true" {
		t.Error("duplicate routed batch missing the replay header")
	}
	if !bytes.Equal(ack1, ack2) {
		t.Errorf("duplicate routed ack differs from the original:\n%s\nvs\n%s", ack1, ack2)
	}
	after := 0
	for _, s := range f.shards {
		after += s.Devices()
	}
	if after != devices {
		t.Errorf("duplicate routed batch changed the fleet: %d -> %d devices", devices, after)
	}
}

// TestRouterHealthz: the fan-out health document sums shard fleets and
// is "ok" only while every shard is.
func TestRouterHealthz(t *testing.T) {
	f := routerFixture(t, 3, nil, nil)
	for _, ing := range stressCohort(t, 9) {
		if _, err := f.client.Ingest(context.Background(), ing); err != nil {
			t.Fatal(err)
		}
	}
	var h RouterHealthResponse
	if err := json.Unmarshal(get(t, f.ts, "/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Shards) != 3 {
		t.Fatalf("healthz = status %q with %d shards, want ok/3", h.Status, len(h.Shards))
	}
	want := 0
	for _, s := range f.shards {
		want += s.Devices()
	}
	if h.Devices != want {
		t.Errorf("healthz devices = %d, want %d", h.Devices, want)
	}
}

// TestRouterHealthzUnreachableShard: a dead backend degrades the
// router's health instead of hiding the hole.
func TestRouterHealthzUnreachableShard(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, live1, _ := testServer(t, nil)
	_, live2, _ := testServer(t, nil)

	cfg := DefaultRouterConfig()
	cfg.Backends = []string{live1.URL, live2.URL, deadURL}
	cfg.Metrics = metrics.NewRegistry()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	defer ts.Close()

	var h RouterHealthResponse
	if err := json.Unmarshal(get(t, ts, "/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("healthz status = %q with a dead shard, want degraded", h.Status)
	}
	unreachable := 0
	for _, sh := range h.Shards {
		if sh.Status == "unreachable" {
			unreachable++
			if sh.Shard != deadURL {
				t.Errorf("unreachable shard = %s, want %s", sh.Shard, deadURL)
			}
		}
	}
	if unreachable != 1 {
		t.Errorf("healthz reports %d unreachable shards, want 1", unreachable)
	}
}

// TestRouterBatchStressWithDegradedShard hammers the routed batch
// endpoints with concurrent mixed load while one shard's journal is
// dead: items owned by the degraded shard fail with per-item read_only
// errors, items on healthy shards succeed, reads (schedule batches and
// fleet reports) stay up everywhere, nothing is fabricated, and the
// in-flight bound holds. Run it under -race.
func TestRouterBatchStressWithDegradedShard(t *testing.T) {
	// A durable shard whose journal dies on the first post-boot write.
	probe, err := faults.NewFS(nil, faults.FSConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := durableServer(t, t.TempDir(), probe); err != nil {
		t.Fatal(err)
	}
	bootOps := probe.Writes()
	ffs, err := faults.NewFS(nil, faults.FSConfig{Seed: 2, CrashAfterWrites: bootOps + 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, dts, dc, err := durableServer(t, t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	trip := replayCohort(t, 2)
	if _, ierr := dc.Ingest(context.Background(), trip[0]); ierr == nil {
		t.Fatal("tripping ingest on the dying journal succeeded")
	} else {
		var ae *apiError
		if !errors.As(ierr, &ae) || ae.Code != http.StatusServiceUnavailable || ae.Kind != "read_only" {
			t.Fatalf("tripping ingest error = %v, want 503 read_only", ierr)
		}
	}

	s1, ts1, _ := testServer(t, nil)
	s2, ts2, _ := testServer(t, nil)
	cfg := DefaultRouterConfig()
	cfg.Backends = []string{ts1.URL, ts2.URL, dts.URL}
	cfg.Metrics = metrics.NewRegistry()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()
	c := NewClient(rts.URL, nil)

	items := make([]IngestRequest, 60)
	degraded := make(map[string]bool)
	healthy := 0
	for i := range items {
		id := fmt.Sprintf("stress-dev-%02d", i)
		clone := trip[i%len(trip)]
		clone.DeviceID = id
		items[i] = clone
		if rt.Ring().Owner(id) == dts.URL {
			degraded[id] = true
		} else {
			healthy++
		}
	}
	if len(degraded) == 0 || healthy == 0 {
		t.Fatalf("placement did not spread: %d degraded, %d healthy", len(degraded), healthy)
	}
	var anyDegraded, anyHealthy string
	for i := range items {
		if degraded[items[i].DeviceID] {
			anyDegraded = items[i].DeviceID
		} else {
			anyHealthy = items[i].DeviceID
		}
	}
	acts := []ActivityJSON{{ID: 1, TimeSecs: 97200, Bytes: 200000, ActiveSecs: 5}}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				start := (g*7 + iter*13) % len(items)
				end := start + 10
				if end > len(items) {
					end = len(items)
				}
				sub := append([]IngestRequest(nil), items[start:end]...)
				resp, err := c.IngestBatch(context.Background(), BatchIngestRequest{Items: sub})
				if err != nil {
					t.Errorf("goroutine %d: ingest batch: %v", g, err)
					continue
				}
				for _, res := range resp.Results {
					switch {
					case degraded[res.DeviceID]:
						if res.OK || res.Error == nil || res.Error.Kind != "read_only" {
							t.Errorf("degraded-owned item %s = %+v, want read_only failure", res.DeviceID, res)
						}
					case !res.OK:
						t.Errorf("healthy-owned item %s failed: %+v", res.DeviceID, res.Error)
					}
				}

				// The degraded shard still serves reads: scheduling for a
				// device it owns succeeds.
				sresp, err := c.ScheduleBatch(context.Background(), BatchScheduleRequest{Items: []ScheduleRequest{
					{DeviceID: anyDegraded, Gen: &GenSpec{User: "volunteer1", Days: 3}, Day: 1, Activities: acts},
					{DeviceID: anyHealthy, Gen: &GenSpec{User: "volunteer2", Days: 3}, Day: 1, Activities: acts},
				}})
				if err != nil {
					t.Errorf("goroutine %d: schedule batch: %v", g, err)
				} else if sresp.Failed != 0 {
					t.Errorf("goroutine %d: schedule batch failed %d items: %+v", g, sresp.Failed, sresp.Results)
				}

				if _, err := c.FleetReport(context.Background(), ""); err != nil {
					t.Errorf("goroutine %d: fleet report with a degraded shard: %v", g, err)
				}
				if n := rt.InFlight(); n > int64(cfg.MaxInFlight) {
					t.Errorf("router in-flight %d exceeds the %d bound", n, cfg.MaxInFlight)
				}
			}
		}(g)
	}
	wg.Wait()

	if ds.Devices() != 0 {
		t.Errorf("degraded shard applied %d devices — read_only failures were fabricated into state", ds.Devices())
	}
	if got := s1.Devices() + s2.Devices(); got != healthy {
		t.Errorf("healthy shards hold %d devices, want %d", got, healthy)
	}
}
