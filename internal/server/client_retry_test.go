package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers the scripted status codes in order, then 200s.
func flakyHandler(t *testing.T, script []int, hits *atomic.Int32) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n < len(script) {
			code := script[n]
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			kind := "overloaded"
			if code == http.StatusServiceUnavailable {
				kind = "read_only"
			}
			w.Write([]byte(`{"error":{"kind":"` + kind + `","message":"scripted failure"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","devices":0,"in_flight":0}`))
	})
}

// retryClient builds a retrying client whose sleeps are recorded, not
// slept, so the table runs instantly.
func retryClient(ts *httptest.Server, p RetryPolicy, slept *[]time.Duration) *Client {
	c := NewClient(ts.URL, nil).WithRetry(p)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return ctx.Err()
	}
	return c
}

func TestClientRetryTable(t *testing.T) {
	policy := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1}
	cases := []struct {
		name      string
		script    []int // per-attempt status before the 200s start
		wantHits  int32
		wantErr   bool
		errCode   int
		wantSleep int
	}{
		{"no failures, one attempt", nil, 1, false, 0, 0},
		{"one 429 then success", []int{429}, 2, false, 0, 1},
		{"read_only 503 then success", []int{503}, 2, false, 0, 1},
		{"mixed transients then success", []int{429, 503, 429}, 4, false, 0, 3},
		{"exhausted attempts", []int{429, 429, 429, 429, 429}, 4, true, 429, 3},
		{"400 is an answer, not a failure", []int{400}, 1, true, 400, 0},
		{"404 not retried", []int{404}, 1, true, 404, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int32
			ts := httptest.NewServer(flakyHandler(t, tc.script, &hits))
			defer ts.Close()
			var slept []time.Duration
			c := retryClient(ts, policy, &slept)
			_, err := c.Healthz(context.Background())
			if tc.wantErr {
				var ae *apiError
				if !errors.As(err, &ae) || ae.Code != tc.errCode {
					t.Fatalf("err = %v, want apiError code %d", err, tc.errCode)
				}
			} else if err != nil {
				t.Fatalf("err = %v, want success after retries", err)
			}
			if hits.Load() != tc.wantHits {
				t.Errorf("server saw %d attempts, want %d", hits.Load(), tc.wantHits)
			}
			if len(slept) != tc.wantSleep {
				t.Errorf("client slept %d times (%v), want %d", len(slept), slept, tc.wantSleep)
			}
			for _, d := range slept {
				if d <= 0 || d > policy.MaxDelay {
					t.Errorf("sleep %v outside (0, %v]", d, policy.MaxDelay)
				}
			}
		})
	}
}

// TestClientRetryHonorsRetryAfter: a server-sent Retry-After stretches
// the backoff up to (and never beyond) MaxDelay.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(t, []int{429}, &hits)) // sends Retry-After: 1
	defer ts.Close()
	var slept []time.Duration
	policy := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 500 * time.Millisecond, Seed: 1}
	c := retryClient(ts, policy, &slept)
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %v, want one wait", slept)
	}
	// Retry-After asked for 1s; MaxDelay caps it at 500ms.
	if slept[0] != policy.MaxDelay {
		t.Errorf("sleep = %v, want Retry-After capped to MaxDelay %v", slept[0], policy.MaxDelay)
	}
}

// TestClientRetryTransportErrors: network-level failures retry;
// a canceled context does not.
func TestClientRetryTransportErrors(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(t, nil, &hits))
	ts.Close() // refuse every connection: a transient transport error
	var slept []time.Duration
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 9}
	c := retryClient(ts, policy, &slept)
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("success against a closed server")
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2 (3 attempts)", len(slept))
	}

	// Context cancellation short-circuits: no retries.
	slept = nil
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Healthz(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(slept) != 0 {
		t.Errorf("canceled context still slept %v", slept)
	}
}

// TestClientRetryDeterministicJitter: the same policy seed yields the
// same backoff schedule — soak runs are reproducible.
func TestClientRetryDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var hits atomic.Int32
		ts := httptest.NewServer(flakyHandler(t, []int{503, 503, 503}, &hits))
		defer ts.Close()
		var slept []time.Duration
		c := retryClient(ts, RetryPolicy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond,
			MaxDelay: time.Second, Seed: 42}, &slept)
		if _, err := c.Healthz(context.Background()); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestClientWithRetryLeavesOriginal: WithRetry is a copy; the original
// client keeps its single-attempt behaviour.
func TestClientWithRetryLeavesOriginal(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(flakyHandler(t, []int{429}, &hits))
	defer ts.Close()
	base := NewClient(ts.URL, nil)
	_ = base.WithRetry(DefaultRetryPolicy())
	if _, err := base.Healthz(context.Background()); err == nil {
		t.Fatal("non-retrying client succeeded through a 429")
	}
	if hits.Load() != 1 {
		t.Errorf("base client made %d attempts, want 1", hits.Load())
	}
}
