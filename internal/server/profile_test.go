package server

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"testing"
)

func intp(v int) *int { return &v }

// TestProfileUpdateIncremental is the serve-path half of the tentpole
// invariant: folding one new day into a cached base profile must land
// on the exact cache key a full mine over the longer trace produces,
// and scheduling against either profile ID must return byte-identical
// bodies.
func TestProfileUpdateIncremental(t *testing.T) {
	_, _, c := testServer(t, nil)
	ctx := context.Background()

	full, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer1", Days: 15}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer1", Days: 14}})
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.ProfileUpdate(ctx, ProfileUpdateRequest{
		ProfileID: base.ProfileID,
		Gen:       &GenSpec{User: "volunteer1", Days: 15},
		Day:       intp(14),
	})
	if err != nil {
		t.Fatal(err)
	}
	if up.ProfileID != full.ProfileID {
		t.Errorf("incremental update ID %s != full-mine ID %s", up.ProfileID, full.ProfileID)
	}
	if up.BaseProfileID != base.ProfileID || up.Days != 15 || up.UserID != "volunteer1" {
		t.Errorf("update response = %+v", up)
	}

	acts := []ActivityJSON{
		{ID: 1, TimeSecs: 14 * 86400, Bytes: 500_000, ActiveSecs: 5},
		{ID: 2, TimeSecs: 14*86400 + 3600, Bytes: 1_200_000, ActiveSecs: 8},
	}
	sFull, err := c.Schedule(ctx, ScheduleRequest{ProfileID: full.ProfileID, Day: 14, Activities: acts})
	if err != nil {
		t.Fatal(err)
	}
	sUp, err := c.Schedule(ctx, ScheduleRequest{ProfileID: up.ProfileID, Day: 14, Activities: acts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sFull, sUp) {
		t.Errorf("schedule via updated profile differs from full-mine profile\n full:    %+v\n updated: %+v", sFull, sUp)
	}
}

// TestProfileUpdateFresh builds a profile from scratch through the
// update endpoint and checks it lands on the same cache entry a mine
// would.
func TestProfileUpdateFresh(t *testing.T) {
	_, _, c := testServer(t, nil)
	ctx := context.Background()

	up, err := c.ProfileUpdate(ctx, ProfileUpdateRequest{Gen: &GenSpec{User: "user4", Days: 14}})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "user4", Days: 14}})
	if err != nil {
		t.Fatal(err)
	}
	if up.ProfileID != mined.ProfileID {
		t.Errorf("fresh update ID %s != mine ID %s", up.ProfileID, mined.ProfileID)
	}
	if up.BaseProfileID != "" || up.Days != 14 {
		t.Errorf("update response = %+v", up)
	}
}

func TestProfileUpdateErrors(t *testing.T) {
	_, _, c := testServer(t, nil)
	ctx := context.Background()
	base, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer1", Days: 14}})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  ProfileUpdateRequest
		code int
		kind string
	}{
		{"unknown base", ProfileUpdateRequest{ProfileID: "sketch:beef", Gen: &GenSpec{User: "volunteer1", Days: 15}},
			http.StatusNotFound, "unknown_profile"},
		{"config with base", ProfileUpdateRequest{ProfileID: base.ProfileID, Config: &MineConfig{SlotWidthSecs: 1800},
			Gen: &GenSpec{User: "volunteer1", Days: 15}}, http.StatusBadRequest, "bad_request"},
		{"no trace or gen", ProfileUpdateRequest{ProfileID: base.ProfileID},
			http.StatusBadRequest, "bad_request"},
		{"day out of range", ProfileUpdateRequest{ProfileID: base.ProfileID,
			Gen: &GenSpec{User: "volunteer1", Days: 15}, Day: intp(15)}, http.StatusBadRequest, "bad_request"},
		{"wrong user", ProfileUpdateRequest{ProfileID: base.ProfileID,
			Gen: &GenSpec{User: "user4", Days: 15}, Day: intp(14)}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.ProfileUpdate(ctx, tc.req)
			var ae *apiError
			if !errors.As(err, &ae) {
				t.Fatalf("err = %v, want apiError", err)
			}
			if ae.Code != tc.code || ae.Kind != tc.kind {
				t.Errorf("got %d/%s (%s), want %d/%s", ae.Code, ae.Kind, ae.Msg, tc.code, tc.kind)
			}
		})
	}
}

// TestGenAliasSkipsGeneration pins the request-shape alias: a repeated
// gen-spec mine is a cache hit (header and profile-cache counters), and
// never re-synthesises the trace.
func TestGenAliasSkipsGeneration(t *testing.T) {
	s, _, c := testServer(t, nil)
	ctx := context.Background()

	first, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer2", Days: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.mProfMiss.Value(); got != 1 {
		t.Errorf("profile cache misses after first mine = %v, want 1", got)
	}
	second, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer2", Days: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.mProfHit.Value(); got != 1 {
		t.Errorf("profile cache hits after second mine = %v, want 1", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached mine differs from cold mine")
	}
	// A different config must not alias to the same entry.
	other, err := c.Mine(ctx, MineRequest{Gen: &GenSpec{User: "volunteer2", Days: 10},
		Config: &MineConfig{SlotWidthSecs: 1800}})
	if err != nil {
		t.Fatal(err)
	}
	if other.ProfileID == first.ProfileID {
		t.Errorf("config change did not change the profile ID")
	}
}
