// Tests for the serve tier's request observability: the access-log
// golden, the error envelope (typed kind + Retry-After), end-to-end
// request-ID propagation through the router, span/counter
// reconciliation, and the serve-scope metrics fold.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netmaster/internal/cfgerr"
	"netmaster/internal/metrics"
	"netmaster/internal/reqtrace"
	"netmaster/internal/slo"
)

// syncBuffer is a goroutine-safe log sink for the access-log tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fakeClock steps a fixed interval per call, making queue-wait, handle
// and total times exact in log lines and spans.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	var n atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(n.Add(1)-1) * step)
	}
}

// TestGoldenAccessLog pins the access-log and slow-request line shapes:
// a deterministic clock and a seeded request-ID generator make the
// emitted JSON byte-stable, so any schema drift shows up as a diff.
func TestGoldenAccessLog(t *testing.T) {
	logs := &syncBuffer{}
	s, ts, _ := testServer(t, func(c *Config) {
		c.LogWriter = logs
		c.SlowRequest = time.Millisecond // every request also emits a slow line
	})
	s.now = fakeClock(5 * time.Millisecond)
	s.ids = reqtrace.NewIDGenSeeded("cafe0001")

	tr := testTrace(t, "volunteer1", 7)
	mineBody, err := json.Marshal(MineRequest{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// miss, hit, then a 400: covers the cache disposition and the
	// error-path line.
	for i, body := range [][]byte{mineBody, mineBody, []byte(`{}`)} {
		resp, err := http.Post(ts.URL+"/v1/mine", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i < 2 && resp.StatusCode != http.StatusOK {
			t.Fatalf("mine %d: status %d", i, resp.StatusCode)
		}
	}

	got := logs.String()
	path := filepath.Join("testdata", "access_log.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("access log drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

// TestErrorEnvelopeRetryAfter table-tests the uniform error envelope:
// retryable statuses (429/502/503) always carry Retry-After, other
// errors never do, and an upstream-set header is preserved.
func TestErrorEnvelopeRetryAfter(t *testing.T) {
	cases := []struct {
		name       string
		err        *apiError
		preset     string // pre-existing Retry-After header, "" = none
		retryAfter string // expected header, "" = absent
	}{
		{"429 overloaded", &apiError{Code: 429, Kind: "overloaded", Msg: "full"}, "", "1"},
		{"502 bad_gateway", &apiError{Code: 502, Kind: "bad_gateway", Msg: "shard down"}, "", "1"},
		{"502 shard_conflict", &apiError{Code: 502, Kind: "shard_conflict", Msg: "dup device"}, "", "1"},
		{"503 read_only", &apiError{Code: 503, Kind: "read_only", Msg: "journal dead"}, "", "1"},
		{"relayed header wins", &apiError{Code: 503, Kind: "read_only", Msg: "journal dead"}, "7", "7"},
		{"400 not retryable", &apiError{Code: 400, Kind: "bad_request", Msg: "nope"}, "", ""},
		{"504 not retryable", &apiError{Code: 504, Kind: "timeout", Msg: "deadline"}, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			if tc.preset != "" {
				rec.Header().Set("Retry-After", tc.preset)
			}
			writeError(rec, tc.err)
			if rec.Code != tc.err.Code {
				t.Errorf("status = %d, want %d", rec.Code, tc.err.Code)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Errorf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
			var env struct {
				Error *apiError `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("body not an error envelope: %v", err)
			}
			if env.Error == nil || env.Error.Kind != tc.err.Kind {
				t.Errorf("envelope = %+v, want kind %q", env.Error, tc.err.Kind)
			}
		})
	}
}

// TestRouterErrorPathsCarryEnvelope drives the two router failure modes
// end-to-end: an unreachable shard (502 bad_gateway) and a placement
// conflict (502 shard_conflict). Both must answer with the typed
// envelope, Retry-After, and a request ID.
func TestRouterErrorPathsCarryEnvelope(t *testing.T) {
	t.Run("unreachable shard", func(t *testing.T) {
		f := routerFixture(t, 1, nil, nil)
		f.shardTS[0].Close()
		resp, err := http.Post(f.ts.URL+"/v1/fleet/ingest", "application/json",
			strings.NewReader(`{"device_id":"dev-1"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		checkRouterError(t, resp, http.StatusBadGateway, "bad_gateway")
	})
	t.Run("shard conflict", func(t *testing.T) {
		f := routerFixture(t, 2, nil, nil)
		// Ingest the same device into both shards directly, violating
		// placement behind the router's back.
		body := ingestBody(t, "conflict/dev-1")
		for _, ts := range f.shardTS {
			resp, err := http.Post(ts.URL+"/v1/fleet/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("direct shard ingest: status %d", resp.StatusCode)
			}
		}
		resp, err := http.Get(f.ts.URL + "/v1/fleet/report")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		checkRouterError(t, resp, http.StatusBadGateway, "shard_conflict")
	})
}

// ingestBody marshals a minimal valid ingest request for deviceID.
func ingestBody(t *testing.T, deviceID string) []byte {
	t.Helper()
	base := replayCohort(t, 2)
	req := base[0]
	req.DeviceID = deviceID
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkRouterError(t *testing.T, resp *http.Response, code int, kind string) {
	t.Helper()
	if resp.StatusCode != code {
		t.Errorf("status = %d, want %d", resp.StatusCode, code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	if resp.Header.Get(reqtrace.HeaderRequestID) == "" {
		t.Error("missing request ID header")
	}
	var env struct {
		Error *apiError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("body not an error envelope: %v", err)
	}
	if env.Error == nil || env.Error.Kind != kind {
		t.Errorf("envelope = %+v, want kind %q", env.Error, kind)
	}
}

// TestRoutedRequestIDEndToEnd is the tracing contract across a 3-shard
// tier (run under -race in CI): every routed response carries one
// request ID, that ID reappears in the owning shard's span ring with
// the propagated hop, fan-out reads land the same ID on every shard,
// and each shard's ring reconciles exactly with its server_* counters.
func TestRoutedRequestIDEndToEnd(t *testing.T) {
	f := routerFixture(t, 3, nil, nil)

	// Routed single-device writes: remember which ID each got.
	ids := map[string]string{} // device -> request ID
	for i := 0; i < 12; i++ {
		dev := fmt.Sprintf("trace/dev-%02d", i)
		resp, err := http.Post(f.ts.URL+"/v1/fleet/ingest", "application/json",
			bytes.NewReader(ingestBody(t, dev)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", dev, resp.StatusCode)
		}
		id := resp.Header.Get(reqtrace.HeaderRequestID)
		if id == "" {
			t.Fatalf("ingest %s: no request ID on response", dev)
		}
		ids[dev] = id
	}

	// A fan-out read: its ID must reach every shard.
	resp, err := http.Get(f.ts.URL + "/v1/fleet/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fanoutID := resp.Header.Get(reqtrace.HeaderRequestID)
	if fanoutID == "" {
		t.Fatal("fleet report: no request ID on response")
	}

	// Collect every shard's spans (reading /debug/requests must not
	// append to the ring, so totals stay stable while we look).
	type spanHit struct {
		shard int
		span  reqtrace.Span
	}
	byID := map[string][]spanHit{}
	for si, ts := range f.shardTS {
		dump, err := NewClient(ts.URL, nil).DebugRequests(context.Background(), 1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range dump.Recent {
			byID[sp.RequestID] = append(byID[sp.RequestID], spanHit{si, sp})
			if sp.Role != "server" {
				t.Errorf("shard %d span role = %q, want server", si, sp.Role)
			}
		}
	}

	// Each routed write landed on exactly one shard, hop 1, same ID.
	for dev, id := range ids {
		hits := byID[id]
		if len(hits) != 1 {
			t.Fatalf("%s: request ID %s seen on %d shard spans, want 1", dev, id, len(hits))
		}
		if sp := hits[0].span; sp.Hop != 1 || sp.Endpoint != "ingest" {
			t.Errorf("%s: span = %+v, want hop 1 endpoint ingest", dev, sp)
		}
	}
	// The fan-out ID landed on all three shards, with distinct hops.
	hops := map[int]bool{}
	for _, hit := range byID[fanoutID] {
		hops[hit.span.Hop] = true
	}
	if len(byID[fanoutID]) != 3 || !hops[1] || !hops[2] || !hops[3] {
		t.Errorf("fan-out ID %s spans = %+v, want one per shard with hops 1..3",
			fanoutID, byID[fanoutID])
	}

	// The router's own ring has one span per routed request, role
	// "router", with the chosen shard recorded for single-device hops.
	rdump, err := f.client.DebugRequests(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	routerSeen := map[string]reqtrace.Span{}
	for _, sp := range rdump.Recent {
		routerSeen[sp.RequestID] = sp
		if sp.Role != "router" {
			t.Errorf("router span role = %q", sp.Role)
		}
	}
	for dev, id := range ids {
		sp, ok := routerSeen[id]
		if !ok {
			t.Errorf("%s: ID %s missing from router ring", dev, id)
			continue
		}
		if sp.Shard == "" {
			t.Errorf("%s: router span has no shard", dev)
		}
	}
	if _, ok := routerSeen[fanoutID]; !ok {
		t.Errorf("fan-out ID %s missing from router ring", fanoutID)
	}

	// Reconciliation: per shard, ring total == server_requests_total ==
	// sum of per-endpoint request counters.
	for si, s := range f.shards {
		snap := s.cfg.Metrics.Snapshot()
		total := snap.Counters["server_requests_total"]
		if got := int64(s.ring.Total()); got != total {
			t.Errorf("shard %d: ring total %d != server_requests_total %d", si, got, total)
		}
		var perEP int64
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, "server_http_") && strings.HasSuffix(name, "_requests_total") {
				perEP += v
			}
		}
		if perEP != total {
			t.Errorf("shard %d: per-endpoint sum %d != server_requests_total %d", si, perEP, total)
		}
	}
	rsnap := f.rt.cfg.Metrics.Snapshot()
	if got, want := int64(f.rt.spans.Total()), rsnap.Counters["router_requests_total"]; got != want {
		t.Errorf("router: ring total %d != router_requests_total %d", got, want)
	}
}

// TestMetricsScopeServeDeterministic pins the serve-scope fold: two
// scrapes of identical state are byte-identical, and the exposition
// carries the merged per-endpoint histograms and SLO burn series.
func TestMetricsScopeServeDeterministic(t *testing.T) {
	sloCfg := slo.Config{TargetP99MS: 2000, TargetErrorRate: 0.01}
	f := routerFixture(t, 3,
		func(c *Config) { c.SLO = sloCfg },
		func(c *RouterConfig) { c.SLO = sloCfg })
	for i := 0; i < 9; i++ {
		resp, err := http.Post(f.ts.URL+"/v1/fleet/ingest", "application/json",
			bytes.NewReader(ingestBody(t, fmt.Sprintf("serve/dev-%02d", i))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(f.ts.URL + "/metrics?scope=serve")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scope=serve: status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first, second := scrape(), scrape()
	if first != second {
		t.Error("two serve-scope scrapes of identical state differ")
	}
	for _, series := range []string{
		"netmaster_server_http_ingest_latency_ms_bucket",
		"netmaster_server_http_ingest_requests_total",
		"netmaster_router_http_ingest_latency_ms_bucket",
		"netmaster_server_slo_requests_total",
		"netmaster_server_slo_error_burn_rate",
		"netmaster_router_slo_latency_burn_rate",
	} {
		if !strings.Contains(first, series) {
			t.Errorf("serve-scope exposition missing %s", series)
		}
	}
}

// TestMetricsFormatJSON covers the raw-snapshot endpoint the fold and
// the bench scrape: scope=self parses as a metrics.Snapshot, any other
// scope with format=json is a 400.
func TestMetricsFormatJSON(t *testing.T) {
	_, ts, c := testServer(t, nil)
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	snap, err := c.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["server_requests_total"]; !ok {
		t.Errorf("snapshot missing server_requests_total: %v", snap.Counters)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=json&scope=fleet")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=json&scope=fleet: status %d, want 400", resp.StatusCode)
	}
}

// TestDebugRequestsEndpoint covers the dump endpoint's knobs: ?n=
// bounds the recent set, bad values 400, and scraping the dump does not
// itself grow the ring.
func TestDebugRequestsEndpoint(t *testing.T) {
	_, ts, c := testServer(t, nil)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/mine", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	dump, err := c.DebugRequests(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent) != 1 || dump.Total != 3 {
		t.Errorf("dump = recent %d total %d, want 1/3", len(dump.Recent), dump.Total)
	}
	if dump.Capacity != reqtrace.DefaultCapacity {
		t.Errorf("capacity = %d, want default %d", dump.Capacity, reqtrace.DefaultCapacity)
	}
	again, err := c.DebugRequests(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Total != dump.Total {
		t.Errorf("dump scrape grew the ring: %d -> %d", dump.Total, again.Total)
	}
	resp, err := http.Get(ts.URL + "/debug/requests?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}

// TestObsConfigValidate checks the new observability knobs reject
// nonsense with typed field errors, on both the daemon and router
// configs.
func TestObsConfigValidate(t *testing.T) {
	cases := []struct {
		name             string
		mutate           func(slow *time.Duration, ring *int, sloCfg *slo.Config)
		component, field string
	}{
		{"negative slow threshold",
			func(s *time.Duration, _ *int, _ *slo.Config) { *s = -time.Second },
			"", "SlowRequest"},
		{"negative trace ring",
			func(_ *time.Duration, r *int, _ *slo.Config) { *r = -1 },
			"", "TraceRing"},
		{"negative slo p99",
			func(_ *time.Duration, _ *int, c *slo.Config) { c.TargetP99MS = -1 },
			"slo.Config", "TargetP99MS"},
		{"error rate above one",
			func(_ *time.Duration, _ *int, c *slo.Config) { c.TargetErrorRate = 1.5 },
			"slo.Config", "TargetErrorRate"},
		{"negative window",
			func(_ *time.Duration, _ *int, c *slo.Config) { c.Window = -5 },
			"slo.Config", "Window"},
	}
	for _, tc := range cases {
		t.Run("server/"+tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg.SlowRequest, &cfg.TraceRing, &cfg.SLO)
			comp := tc.component
			if comp == "" {
				comp = "server.Config"
			}
			if err := cfg.Validate(); !cfgerr.Is(err, comp, tc.field) {
				t.Errorf("error %v does not name %s.%s", err, comp, tc.field)
			}
		})
		t.Run("router/"+tc.name, func(t *testing.T) {
			cfg := DefaultRouterConfig()
			cfg.Backends = []string{"http://127.0.0.1:1"}
			cfg.Metrics = metrics.NewRegistry()
			tc.mutate(&cfg.SlowRequest, &cfg.TraceRing, &cfg.SLO)
			comp := tc.component
			if comp == "" {
				comp = "server.RouterConfig"
			}
			if err := cfg.Validate(); !cfgerr.Is(err, comp, tc.field) {
				t.Errorf("error %v does not name %s.%s", err, comp, tc.field)
			}
		})
	}
}
