// Sequential-versus-parallel benchmarks for the evaluation engine and
// the scheduler hot path (see docs/performance.md). Each Benchmark*
// pair runs the identical workload at parallelism 1 and at GOMAXPROCS;
// the "speedup" sub-benchmark times both inside one run and reports the
// ratio via b.ReportMetric, so a single `-bench` invocation yields the
// headline number. On a single-core host the fan-out ratio is ~1× by
// construction; the allocation-diet wins are benchmarked separately in
// internal/knapsack (BenchmarkSinKnapOldVsNew) and internal/core
// (BenchmarkPenaltyOldVsNew).
package netmaster_test

import (
	"runtime"
	"testing"
	"time"

	"netmaster"
)

// timeRuns measures the wall-clock time of n calls to fn under the
// given parallelism, restoring the previous setting afterwards.
func timeRuns(b *testing.B, workers, n int, fn func() error) time.Duration {
	b.Helper()
	prev := netmaster.SetParallelism(workers)
	defer netmaster.SetParallelism(prev)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// benchSeqVsPar emits the sequential / parallel / speedup trio for one
// workload.
func benchSeqVsPar(b *testing.B, fn func() error) {
	maxWorkers := runtime.GOMAXPROCS(0)
	b.Run("sequential", func(b *testing.B) {
		prev := netmaster.SetParallelism(1)
		defer netmaster.SetParallelism(prev)
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		prev := netmaster.SetParallelism(maxWorkers)
		defer netmaster.SetParallelism(prev)
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq := timeRuns(b, 1, 1, fn)
			par := timeRuns(b, maxWorkers, 1, fn)
			b.ReportMetric(float64(seq)/float64(par), "speedup-x")
			b.ReportMetric(float64(maxWorkers), "workers")
		}
	})
}

// BenchmarkFig8ParallelSpeedup compares the Fig. 8 delay sweep at
// parallelism 1 versus GOMAXPROCS. The sweep fans out over (delay,
// trace) pairs; output is bit-identical either way (see
// TestEvalDeterminismAcrossParallelism).
func BenchmarkFig8ParallelSpeedup(b *testing.B) {
	fixtures(b)
	benchSeqVsPar(b, func() error {
		_, err := netmaster.Fig8(benchVols, benchModel, []netmaster.Duration{0, 10, 60, 300, 600})
		return err
	})
}

// BenchmarkFig7ParallelSpeedup compares the full live comparison (one
// independent policy suite per volunteer) at parallelism 1 versus
// GOMAXPROCS.
func BenchmarkFig7ParallelSpeedup(b *testing.B) {
	fixtures(b)
	cfg := netmaster.DefaultFig7Config(benchModel)
	cfg.Histories = benchHists
	benchSeqVsPar(b, func() error {
		_, err := netmaster.Fig7(benchVols, cfg)
		return err
	})
}

// schedule1k builds the 1000-activity scheduling instance used by the
// scheduler hot-path benchmark: a day's horizon with eight unused
// slots and deterministic pseudo-random activities.
func schedule1k(b *testing.B) (*netmaster.Scheduler, []netmaster.Interval, []netmaster.SchedActivity) {
	b.Helper()
	model := netmaster.Model3G()
	cfg := netmaster.DefaultSchedulerConfig()
	cfg.BandwidthBps = 256
	cfg.SavedEnergy = func(a netmaster.SchedActivity) float64 { return model.SavedEnergy(a.ActiveSecs) }
	cfg.UseProb = func(t netmaster.Instant) float64 {
		return 0.02 + 0.04*float64(t.HourOfDay()%7)
	}
	s, err := netmaster.NewScheduler(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var u []netmaster.Interval
	for h := 1; h < 24; h += 3 {
		u = append(u, netmaster.Interval{
			Start: netmaster.Instant(h) * netmaster.Instant(netmaster.Hour),
			End:   netmaster.Instant(h)*netmaster.Instant(netmaster.Hour) + netmaster.Instant(40*netmaster.Minute),
		})
	}
	tn := make([]netmaster.SchedActivity, 1000)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(mod int64) int64 { // splitmix-style deterministic stream
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int64(state % uint64(mod))
	}
	for i := range tn {
		tn[i] = netmaster.SchedActivity{
			ID:         i,
			Time:       netmaster.Instant(next(int64(netmaster.Day))),
			Bytes:      next(200_000) + 1,
			ActiveSecs: float64(next(25) + 1),
			DeferOnly:  next(5) == 0,
		}
	}
	return s, u, tn
}

// BenchmarkSchedule1kParallelSpeedup compares Scheduler.Schedule on a
// 1000-activity instance with per-slot knapsack solves sequential
// versus fanned out. The packing is bit-identical either way (see
// TestSchedulerDeterminismAcrossParallelism).
func BenchmarkSchedule1kParallelSpeedup(b *testing.B) {
	s, u, tn := schedule1k(b)
	benchSeqVsPar(b, func() error {
		_, err := s.Schedule(u, tn)
		return err
	})
}
