// Duty-cycle schemes: compare the paper's exponential sleep against fixed
// and random sleep over a silent half hour (Fig. 10b), then show how the
// exponential scheme reacts to a burst of activity.
package main

import (
	"fmt"
	"log"

	"netmaster"
)

func main() {
	const (
		interval = 10 * netmaster.Second
		horizon  = 30 * netmaster.Minute
		window   = 5 * netmaster.Second
	)

	exp, err := netmaster.NewExponentialSleep(interval, 0)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := netmaster.NewFixedSleep(interval)
	if err != nil {
		log.Fatal(err)
	}
	random, err := netmaster.NewRandomSleep(interval/2, interval*2, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("silent half hour (no network activity):")
	for _, s := range []netmaster.DutyScheme{exp, fixed, random} {
		res := netmaster.SimulateDutyCycle(s, 0, horizon, window, nil)
		fmt.Printf("  %-12s %3d wake-ups, radio on %4.1f%% of the time\n",
			s.Name(), res.NumWakeUps(), res.RadioOnFraction()*100)
	}

	// Activity between minutes 10 and 12 resets the exponential
	// backoff; watch the wake density around it.
	active := netmaster.Interval{Start: 10 * 60, End: 12 * 60}
	exp2, err := netmaster.NewExponentialSleep(interval, 0)
	if err != nil {
		log.Fatal(err)
	}
	res := netmaster.SimulateDutyCycle(exp2, 0, horizon, window, func(iv netmaster.Interval) bool {
		return iv.Overlaps(active)
	})
	fmt.Printf("\nexponential sleep with activity in minutes 10-12 (%d wake-ups):\n", res.NumWakeUps())
	for _, w := range res.WakeUps {
		marker := ""
		if w.Activity {
			marker = "  <- activity detected, backoff reset"
		}
		fmt.Printf("  wake at %v%s\n", w.At, marker)
	}
}
