// Online middleware walkthrough: run the NetMaster service the way it
// runs on a device — event by event, with duty-cycle ticks and nightly
// mining — and compare the online outcome against the unmanaged baseline.
// This uses internal packages directly (the online service is below the
// facade) and therefore lives inside the module.
package main

import (
	"fmt"
	"log"

	"netmaster/internal/device"
	"netmaster/internal/middleware"
	"netmaster/internal/policy"
	"netmaster/internal/power"
	"netmaster/internal/synth"
)

func main() {
	tr, err := synth.Generate(synth.EvalCohort()[0], 7)
	if err != nil {
		log.Fatal(err)
	}
	model := power.Model3G()

	res, err := middleware.Replay(tr, middleware.DefaultReplayConfig(model))
	if err != nil {
		log.Fatal(err)
	}

	// The command log is what the scheduling component actually issued:
	// radio switches and triggered syncs.
	counts := map[middleware.CommandKind]int{}
	for _, c := range res.Commands {
		counts[c.Kind]++
	}
	fmt.Printf("service issued %d commands over %d days:\n", len(res.Commands), tr.Days)
	for _, k := range []middleware.CommandKind{
		middleware.CmdRadioEnable, middleware.CmdRadioDisable, middleware.CmdTriggerSync,
	} {
		fmt.Printf("  %-14s %d\n", k, counts[k])
	}

	// The monitoring database recorded everything the miner needs.
	stats := res.Service.DB().Stats()
	fmt.Printf("\nmonitoring DB: %d records appended, %d cache flushes (budget %d KB)\n",
		stats.Appended, stats.Flushes, stats.BudgetBytes/1024)

	// The nightly mining runs produced a live profile.
	if p := res.Service.Profile(); p != nil {
		fmt.Printf("mined profile: %d weekday / %d weekend days of history\n",
			p.Weekday.Days, p.Weekend.Days)
	}
	fmt.Printf("special apps: %v\n", res.Service.SpecialApps())

	// And the derived plan is a plan like any other: measure it.
	base, err := device.Run(policy.Baseline{}, tr, model)
	if err != nil {
		log.Fatal(err)
	}
	online, err := device.ComputeMetrics(res.Plan, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline:  %8.0f J\nonline RT: %8.0f J  (saving %.1f%%, %d duty wake-ups)\n",
		base.Radio.EnergyJ, online.Radio.EnergyJ,
		online.EnergySavingVs(base)*100, online.WakeUps)
}
