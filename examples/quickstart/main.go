// Quickstart: generate a synthetic smartphone usage trace, run the
// NetMaster middleware over it, and print the energy it saves relative to
// the unmanaged baseline.
package main

import (
	"fmt"
	"log"

	"netmaster"
)

func main() {
	// Every volunteer of the paper's evaluation cohort is available as
	// a spec; generate three weeks of usage for the first one.
	spec := netmaster.EvalCohort()[0]
	tr, err := netmaster.GenerateTrace(spec, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %d days, %d screen sessions, %d network activities\n",
		tr.UserID, tr.Days, len(tr.Sessions), len(tr.Activities))

	// The radio model used throughout the paper's evaluation: WCDMA
	// with DCH/FACH tails.
	model := netmaster.Model3G()

	// NetMaster needs history to mine habits from; the paper collected
	// weeks of traces before enabling the middleware.
	history, err := netmaster.GenerateHistory(spec, 14)
	if err != nil {
		log.Fatal(err)
	}
	cfg := netmaster.DefaultNetMasterConfig(model)
	cfg.History = history
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the baseline and NetMaster and compare.
	base, err := netmaster.Run(netmaster.BaselinePolicy{}, tr, model)
	if err != nil {
		log.Fatal(err)
	}
	m, err := netmaster.Run(nm, tr, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline radio energy: %8.0f J over %.1f h radio-on\n",
		base.Radio.EnergyJ, base.Radio.RadioOnSecs/3600)
	fmt.Printf("netmaster radio energy: %7.0f J over %.1f h radio-on\n",
		m.Radio.EnergyJ, m.Radio.RadioOnSecs/3600)
	fmt.Printf("energy saving: %.1f%%   radio-on saving: %.1f%%\n",
		m.EnergySavingVs(base)*100, m.RadioOnSavingVs(base)*100)
	down, up, _, _ := m.RateIncreaseVs(base)
	fmt.Printf("bandwidth utilization: %.2fx down, %.2fx up\n", down, up)
	fmt.Printf("wrong decisions: %d of %d network-wanting interactions (%.2f%%)\n",
		m.WrongDecisions, m.NetInteractions, m.WrongDecisionRate()*100)
}
