// Custom cohort walkthrough: define your own user population in a JSON
// spec file, generate traces from it, and evaluate NetMaster on the
// resulting workload — the path a downstream user takes to test the
// middleware against their own usage assumptions.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"netmaster"
)

func main() {
	// Start from a built-in volunteer and reshape it: a commuter whose
	// entire phone life happens on two train rides.
	spec := netmaster.EvalCohort()[0]
	spec.ID = "train-commuter"
	spec.Seed = 20260704
	var weekday [24]float64
	weekday[7] = 18 // morning ride
	weekday[18] = 16
	weekday[8] = 4
	weekday[19] = 4
	spec.WeekdayProfile = weekday
	var weekend [24]float64
	weekend[11] = 6
	weekend[21] = 6
	spec.WeekendProfile = weekend

	// Persist the cohort as JSON — the same file `tracegen -spec` reads.
	dir, err := os.MkdirTemp("", "netmaster-cohort")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	specPath := filepath.Join(dir, "cohort.json")
	if err := netmaster.WriteSpecsFile(specPath, []netmaster.UserSpec{spec}); err != nil {
		log.Fatal(err)
	}
	specs, err := netmaster.ReadSpecsFile(specPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort file %s: %d user(s)\n", specPath, len(specs))

	// Generate and evaluate.
	tr, err := netmaster.GenerateTrace(specs[0], 14)
	if err != nil {
		log.Fatal(err)
	}
	history, err := netmaster.GenerateHistory(specs[0], 14)
	if err != nil {
		log.Fatal(err)
	}
	model := netmaster.Model3G()
	cfg := netmaster.DefaultNetMasterConfig(model)
	cfg.History = history
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := netmaster.Run(netmaster.BaselinePolicy{}, tr, model)
	if err != nil {
		log.Fatal(err)
	}
	m, err := netmaster.Run(nm, tr, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d sessions, %d activities over %d days\n",
		tr.UserID, len(tr.Sessions), len(tr.Activities), tr.Days)
	fmt.Printf("energy saving: %.1f%%  (a two-peak habit is NetMaster's best case:\n",
		m.EnergySavingVs(base)*100)
	fmt.Println(" nearly all background traffic sits far from the user's active slots)")

	// The per-app attribution shows where the remaining budget goes.
	plan, err := nm.Plan(tr)
	if err != nil {
		log.Fatal(err)
	}
	shares, err := netmaster.EnergyByApp(plan, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop remaining energy consumers:")
	for i, s := range shares {
		if i == 4 {
			break
		}
		fmt.Printf("  %-28s %7.0f J (tail %5.0f J)\n", s.App, s.EnergyJ, s.TailJ)
	}
}
