// Policy comparison: replay every policy of the paper's evaluation —
// baseline, offline oracle, NetMaster, naive delay and naive batch — over
// one volunteer's trace and print the Fig. 7-style comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"netmaster"
)

func main() {
	spec := netmaster.EvalCohort()[1]
	tr, err := netmaster.GenerateTrace(spec, 21)
	if err != nil {
		log.Fatal(err)
	}
	model := netmaster.Model3G()

	history, err := netmaster.GenerateHistory(spec, 14)
	if err != nil {
		log.Fatal(err)
	}
	nmCfg := netmaster.DefaultNetMasterConfig(model)
	nmCfg.History = history

	var policies []netmaster.Policy
	oracle, err := netmaster.NewOracle(model)
	if err != nil {
		log.Fatal(err)
	}
	nm, err := netmaster.NewNetMasterPolicy(nmCfg)
	if err != nil {
		log.Fatal(err)
	}
	policies = append(policies, oracle, nm)
	for _, d := range []netmaster.Duration{10, 20, 60} {
		dp, err := netmaster.NewDelay(d)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, dp)
	}
	bp, err := netmaster.NewBatch(5, 0)
	if err != nil {
		log.Fatal(err)
	}
	policies = append(policies, bp)

	results, err := netmaster.Compare(tr, model, policies)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tenergy (J)\tsaving\tradio-on (h)\tbw down\taffected")
	base := results[0].Metrics
	for _, r := range results {
		down, _, _, _ := r.Metrics.RateIncreaseVs(base)
		fmt.Fprintf(w, "%s\t%.0f\t%.1f%%\t%.1f\t%.2fx\t%.1f%%\n",
			r.Policy, r.Metrics.Radio.EnergyJ, r.EnergySaving*100,
			r.Metrics.Radio.RadioOnSecs/3600, down, r.Metrics.AffectedRate()*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
