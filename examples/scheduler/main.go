// Core scheduler walkthrough: build an overlapped multiple-knapsack
// instance by hand — two predicted user active slots and a set of
// screen-off activities between them — and inspect how Algorithm 1 packs
// it: duplication, SinKnap, duplicate filtering and greedy add.
package main

import (
	"fmt"
	"log"

	"netmaster"
)

func main() {
	model := netmaster.Model3G()

	// The mined usage probability: high in the two morning/evening
	// slots, low overnight.
	useProb := func(t netmaster.Instant) float64 {
		switch h := t.HourOfDay(); {
		case h >= 8 && h < 10:
			return 0.9
		case h >= 20 && h < 22:
			return 0.8
		case h >= 1 && h < 6:
			return 0.02
		default:
			return 0.15
		}
	}

	cfg := netmaster.DefaultSchedulerConfig()
	cfg.SavedEnergy = func(a netmaster.SchedActivity) float64 {
		return model.SavedEnergy(a.ActiveSecs)
	}
	cfg.UseProb = useProb
	// A deliberately tight capacity so the knapsack has to choose.
	cfg.BandwidthBps = 64

	sched, err := netmaster.NewScheduler(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Two predicted active slots: 08-10h and 20-22h.
	u := []netmaster.Interval{
		{Start: 8 * 3600, End: 10 * 3600},
		{Start: 20 * 3600, End: 22 * 3600},
	}

	// Screen-off activities scattered through the day. Sizes in bytes,
	// transfer times in seconds; pushes may only defer.
	tn := []netmaster.SchedActivity{
		{ID: 1, Time: 2 * 3600, Bytes: 80 * 1024, ActiveSecs: 12},                  // overnight sync
		{ID: 2, Time: 3 * 3600, Bytes: 150 * 1024, ActiveSecs: 20},                 // big overnight sync
		{ID: 3, Time: 12 * 3600, Bytes: 40 * 1024, ActiveSecs: 6},                  // midday sync, between slots
		{ID: 4, Time: 13 * 3600, Bytes: 60 * 1024, ActiveSecs: 9, DeferOnly: true}, // midday push
		{ID: 5, Time: 15 * 3600, Bytes: 200 * 1024, ActiveSecs: 25},                // afternoon sync
		{ID: 6, Time: 23 * 3600, Bytes: 30 * 1024, ActiveSecs: 5, DeferOnly: true}, // late push
	}

	result, err := sched.Schedule(u, tn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity per slot: %d bytes\n\n", cfg.Capacity(u[0]))
	fmt.Println("assignments:")
	for _, a := range result.Assignments {
		fmt.Printf("  activity %d -> slot %d at %v  (ΔE=%.1f J, ΔP=%.2f J, profit=%.1f J)\n",
			a.ActivityID, a.SlotIndex, a.Target, a.Saved, a.Penalty, a.Profit)
	}
	fmt.Printf("\nunscheduled: %v\n", result.Unscheduled)
	fmt.Printf("slot loads: %v bytes\n", result.SlotLoad)
	fmt.Printf("objective: ΣΔE=%.1f J − ΣΔP=%.2f J = %.1f J\n",
		result.TotalSaved, result.TotalPenalty, result.Objective)

	// Compare against exhaustive search on this small instance: the
	// (1−ε)/2 guarantee of Lemma IV.1 in action.
	opt, err := sched.BruteForce(u, tn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrute-force optimum: %.1f J  (algorithm achieved %.0f%%, guarantee ≥ %.0f%%)\n",
		opt.Objective, 100*result.Objective/opt.Objective, 100*(1-cfg.Eps)/2)
}
