// Habit mining walkthrough: reproduce the paper's Section III analysis on
// one user — hourly intensity, day-to-day Pearson regularity, predicted
// user active slots at the paper's thresholds, and the Special-App
// allowlist.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"netmaster"
)

func main() {
	// The motivation cohort's user 4 is the paper's very regular user
	// (Fig. 4, mean day-to-day Pearson 0.8171).
	spec := netmaster.MotivationCohort()[3]
	tr, err := netmaster.GenerateTrace(spec, 21)
	if err != nil {
		log.Fatal(err)
	}

	profile, err := netmaster.MineHabits(tr, netmaster.DefaultHabitConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Hourly usage probability (Eq. 2's Pr[u(ti)]) for weekdays.
	fmt.Printf("weekday usage probability by hour for %s:\n", tr.UserID)
	for h := 0; h < 24; h++ {
		p := profile.Weekday.Slots[h].UseProb
		bar := strings.Repeat("#", int(p*40))
		fmt.Printf("  %02d:00  %.2f %s\n", h, p, bar)
	}

	// Predicted user active slots at the paper's weekday δ = 0.2.
	fmt.Println("\npredicted user active slots (day 7, a Monday):")
	for _, iv := range profile.PredictedActiveSlots(7) {
		fmt.Printf("  %v\n", iv)
	}

	// The screen-off network active slots the scheduler would move.
	tn := profile.PredictedNetSlots(7)
	fmt.Printf("\npredicted screen-off network activity (Tn): %d app-slots\n", len(tn))
	for _, pn := range tn[:min(5, len(tn))] {
		fmt.Printf("  %-28s in %v: %.1f bursts, %.1f kB expected\n",
			pn.App, pn.Slot, pn.Bursts, pn.Bytes()/1024)
	}

	// Special Apps: used at least once with network activity.
	fmt.Printf("\nSpecial Apps (%d of %d installed):\n",
		len(profile.SpecialApps), len(tr.InstalledApps))
	for _, app := range profile.SpecialApps {
		fmt.Printf("  %s\n", app)
	}

	// Day-to-day regularity: the Pearson parameter of Eq. 1.
	var sum float64
	n := 0
	for d1 := 0; d1 < 7; d1++ {
		for d2 := d1 + 1; d2 < 8; d2++ {
			sum += pearson(tr.HourlyIntensity(d1), tr.HourlyIntensity(d2))
			n++
		}
	}
	fmt.Printf("\nmean day-to-day Pearson over the first 8 days: %.4f (paper: 0.8171)\n", sum/float64(n))
}

func pearson(x, y []float64) float64 {
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(len(x))
	my /= float64(len(y))
	var sxy, sxx, syy float64
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
		syy += (y[i] - my) * (y[i] - my)
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
