module netmaster

go 1.22
