package netmaster_test

import (
	"testing"

	"netmaster"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the facade the
// way the quickstart example does: generate → mine → schedule → replay →
// compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec := netmaster.EvalCohort()[0]
	tr, err := netmaster.GenerateTrace(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	model := netmaster.Model3G()
	history, err := netmaster.GenerateHistory(spec, 7)
	if err != nil {
		t.Fatal(err)
	}

	cfg := netmaster.DefaultNetMasterConfig(model)
	cfg.History = history
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := netmaster.NewOracle(model)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := netmaster.NewDelay(60 * netmaster.Second)
	if err != nil {
		t.Fatal(err)
	}

	results, err := netmaster.Compare(tr, model, []netmaster.Policy{oracle, nm, delay})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	oracleSaving := results[1].EnergySaving
	nmSaving := results[2].EnergySaving
	delaySaving := results[3].EnergySaving
	if !(oracleSaving >= nmSaving && nmSaving > delaySaving) {
		t.Errorf("ordering violated: oracle %v, netmaster %v, delay %v",
			oracleSaving, nmSaving, delaySaving)
	}
	if nmSaving < 0.4 {
		t.Errorf("NetMaster saving = %v, expected substantial", nmSaving)
	}
}

// TestPublicAPIMining exercises the habit-mining surface.
func TestPublicAPIMining(t *testing.T) {
	tr, err := netmaster.GenerateTrace(netmaster.MotivationCohort()[3], 14)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := netmaster.MineHabits(tr, netmaster.DefaultHabitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.SpecialApps) == 0 {
		t.Error("no Special Apps detected")
	}
	slots := profile.PredictedActiveSlots(14)
	if len(slots) == 0 {
		t.Error("no predicted active slots")
	}
	if acc := profile.PredictionAccuracy(tr, 0.2); acc <= 0.5 {
		t.Errorf("accuracy = %v", acc)
	}
}

// TestPublicAPIScheduler exercises the core algorithm surface.
func TestPublicAPIScheduler(t *testing.T) {
	model := netmaster.Model3G()
	cfg := netmaster.DefaultSchedulerConfig()
	cfg.SavedEnergy = func(a netmaster.SchedActivity) float64 { return model.SavedEnergy(a.ActiveSecs) }
	cfg.UseProb = func(netmaster.Instant) float64 { return 0.05 }
	s, err := netmaster.NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := []netmaster.Interval{{Start: 8 * 3600, End: 10 * 3600}}
	tn := []netmaster.SchedActivity{
		{ID: 1, Time: 3 * 3600, Bytes: 4096, ActiveSecs: 10},
	}
	sched, err := s.Schedule(u, tn)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Assignments) != 1 {
		t.Fatalf("assignments = %+v", sched.Assignments)
	}
	// The knapsack primitives are reachable too.
	sol, err := netmaster.SinKnap([]netmaster.KnapsackItem{
		{ID: 0, Profit: 10, Weight: 5},
		{ID: 1, Profit: 7, Weight: 5},
	}, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 10 {
		t.Errorf("SinKnap profit = %v", sol.Profit)
	}
}

// TestPublicAPITraceIO exercises the serialization surface.
func TestPublicAPITraceIO(t *testing.T) {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/u.trace"
	if err := netmaster.WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := netmaster.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.UserID != tr.UserID || len(back.Activities) != len(tr.Activities) {
		t.Error("trace IO roundtrip mismatch")
	}
}

// TestPublicAPIChaos exercises the fault-injection surface: online
// replay, chaos replay under a uniform schedule, health counters and
// the fault-impact evaluation.
func TestPublicAPIChaos(t *testing.T) {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	model := netmaster.Model3G()
	plain, err := netmaster.OnlineReplay(tr, netmaster.DefaultOnlineReplayConfig(model))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Plan.Validate(); err != nil {
		t.Fatal(err)
	}

	cfg := netmaster.DefaultChaosConfig(model)
	cfg.Faults = netmaster.UniformFaults(5, 0.2)
	res, err := netmaster.ChaosReplay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TotalInjected() == 0 || res.Health.FaultsAbsorbed() == 0 {
		t.Fatalf("chaos replay injected/absorbed nothing: %+v", res.Health)
	}
	if res.Health.Mode != netmaster.ModeNormal &&
		res.Health.Mode != netmaster.ModeDutyOnly &&
		res.Health.Mode != netmaster.ModePassThrough {
		t.Fatalf("unknown mode %v", res.Health.Mode)
	}

	rows, err := netmaster.FaultImpact(tr, model, []float64{0.1}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Seeds != 2 {
		t.Fatalf("fault impact rows = %+v", rows)
	}
}
