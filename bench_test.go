// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation
// benches for the design choices the paper fixes. Each benchmark
// regenerates the figure's data series and reports the headline number
// via b.ReportMetric, so `go test -bench=.` reproduces the evaluation.
package netmaster_test

import (
	"sync"
	"testing"

	"netmaster"
)

// Shared fixtures, generated once outside the benchmark timers.
var (
	fixtureOnce sync.Once
	fixtureErr  error
	benchCohort []*netmaster.Trace // 8-user motivation cohort, 21 days
	benchVols   []*netmaster.Trace // 3-volunteer eval cohort, 14 days
	benchHists  map[string]*netmaster.Trace
	benchModel  *netmaster.PowerModel
)

// fixtures builds the shared cohorts once; a generation failure fails
// the calling benchmark (and every later one) instead of crashing the
// whole test binary.
func fixtures(b *testing.B) {
	b.Helper()
	fixtureOnce.Do(func() {
		if benchCohort, fixtureErr = netmaster.GenerateCohort(netmaster.MotivationCohort(), 21); fixtureErr != nil {
			return
		}
		if benchVols, fixtureErr = netmaster.GenerateCohort(netmaster.EvalCohort(), 14); fixtureErr != nil {
			return
		}
		if benchHists, fixtureErr = netmaster.EvalHistories(14); fixtureErr != nil {
			return
		}
		benchModel = netmaster.Model3G()
	})
	if fixtureErr != nil {
		b.Fatalf("fixtures: %v", fixtureErr)
	}
}

// BenchmarkFig1aActivityDistribution regenerates Fig. 1(a): the
// screen-on/screen-off split of network activities (paper: 40.98%
// screen-off on average).
func BenchmarkFig1aActivityDistribution(b *testing.B) {
	fixtures(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mean = netmaster.Fig1a(benchCohort)
	}
	b.ReportMetric(mean*100, "screen-off-%")
}

// BenchmarkFig1bBandwidthCDF regenerates Fig. 1(b): transfer-rate CDFs
// (paper: 90% of screen-off transfers below 1 kB/s, screen-on below 5).
func BenchmarkFig1bBandwidthCDF(b *testing.B) {
	fixtures(b)
	var offP90, onP90 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onCDF, offCDF := netmaster.Fig1b(benchCohort)
		onP90 = onCDF.Quantile(0.9)
		offP90 = offCDF.Quantile(0.9)
	}
	b.ReportMetric(offP90, "off-p90-kBps")
	b.ReportMetric(onP90, "on-p90-kBps")
}

// BenchmarkFig2ScreenOnUtilization regenerates Fig. 2 (paper: 45.14%
// average radio utilization of screen-on time).
func BenchmarkFig2ScreenOnUtilization(b *testing.B) {
	fixtures(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mean = netmaster.Fig2(benchCohort)
	}
	b.ReportMetric(mean*100, "utilization-%")
}

// BenchmarkFig3CrossUserPearson regenerates Fig. 3 (paper: mean 0.1353).
func BenchmarkFig3CrossUserPearson(b *testing.B) {
	fixtures(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, mean = netmaster.Fig3(benchCohort)
	}
	b.ReportMetric(mean, "pearson")
}

// BenchmarkFig4IntraUserPearson regenerates Fig. 4: the day-by-day
// Pearson matrix of the very regular user (paper: mean 0.8171).
func BenchmarkFig4IntraUserPearson(b *testing.B) {
	fixtures(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, mean, err = netmaster.Fig4(benchCohort[3], 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "pearson")
}

// BenchmarkFig5AppPattern regenerates Fig. 5: the one-week app usage
// pattern of user 3 (paper: 8 of 23 apps network-active).
func BenchmarkFig5AppPattern(b *testing.B) {
	fixtures(b)
	var apps int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := netmaster.Fig5(benchCohort[2], 7)
		if err != nil {
			b.Fatal(err)
		}
		apps = len(rows)
	}
	b.ReportMetric(float64(apps), "network-apps")
}

// fig7Rows runs the full Fig. 7 comparison once per iteration.
func fig7Rows(b *testing.B) []netmaster.Fig7Row {
	cfg := netmaster.DefaultFig7Config(benchModel)
	cfg.Histories = benchHists
	rows, err := netmaster.Fig7(benchVols, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkFig7aEnergySaving regenerates Fig. 7(a): radio energy saving
// of oracle / NetMaster / delay-and-batch (paper: NetMaster 77.8% mean).
func BenchmarkFig7aEnergySaving(b *testing.B) {
	fixtures(b)
	var nmMean, oracleMean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := fig7Rows(b)
		nmMean, oracleMean = 0, 0
		for _, r := range rows {
			nmMean += r.NetMasterSaving
			oracleMean += r.OracleSaving
		}
		nmMean /= float64(len(rows))
		oracleMean /= float64(len(rows))
	}
	b.ReportMetric(nmMean*100, "netmaster-saving-%")
	b.ReportMetric(oracleMean*100, "oracle-saving-%")
}

// BenchmarkFig7bRadioOnTime regenerates Fig. 7(b): the share of default
// radio-on time NetMaster turns off (paper: 75.39%).
func BenchmarkFig7bRadioOnTime(b *testing.B) {
	fixtures(b)
	var offShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := fig7Rows(b)
		offShare = 0
		for _, r := range rows {
			offShare += r.RadioOffByNM
		}
		offShare /= float64(len(rows))
	}
	b.ReportMetric(offShare*100, "radio-off-%")
}

// BenchmarkFig7cBandwidthUtilization regenerates Fig. 7(c): average rate
// multipliers (paper: 3.84× down, 2.63× up, peak ≈ 1×).
func BenchmarkFig7cBandwidthUtilization(b *testing.B) {
	fixtures(b)
	var down, up, peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := fig7Rows(b)
		down, up, peak = 0, 0, 0
		for _, r := range rows {
			down += r.DownAvgIncrease
			up += r.UpAvgIncrease
			peak += r.DownPeakIncrease
		}
		n := float64(len(rows))
		down, up, peak = down/n, up/n, peak/n
	}
	b.ReportMetric(down, "down-x")
	b.ReportMetric(up, "up-x")
	b.ReportMetric(peak, "peak-x")
}

// BenchmarkFig8DelaySweep regenerates Fig. 8: the delay-interval sweep
// (paper @600 s: radio-on −36.7%, bandwidth +33.05%, energy −9.2%,
// affected >40%).
func BenchmarkFig8DelaySweep(b *testing.B) {
	fixtures(b)
	var last netmaster.Fig8Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := netmaster.Fig8(benchVols, benchModel, []netmaster.Duration{0, 10, 60, 300, 600})
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1]
	}
	b.ReportMetric(last.EnergySaving*100, "energy-saving-%@600s")
	b.ReportMetric(last.AffectedShare*100, "affected-%@600s")
}

// BenchmarkFig9BatchSweep regenerates Fig. 9: the batch-size sweep
// (paper: gains plateau past 5 aggregated transfers).
func BenchmarkFig9BatchSweep(b *testing.B) {
	fixtures(b)
	var at5, at10 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := netmaster.Fig9(benchVols, benchModel, []int{0, 2, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
		at5, at10 = rows[2].EnergySaving, rows[3].EnergySaving
	}
	b.ReportMetric(at5*100, "saving-%@5")
	b.ReportMetric(at10*100, "saving-%@10")
}

// BenchmarkFig10aSleepIntervals regenerates Fig. 10(a): radio-on fraction
// versus wake-up count for the paper's sleep intervals.
func BenchmarkFig10aSleepIntervals(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		series := netmaster.Fig10a([]netmaster.Duration{5, 10, 20, 30, 120, 360}, 5, 20)
		frac = series[3].Fraction[19] // sleep 30 s after 20 wake-ups
	}
	b.ReportMetric(frac, "radio-on-fraction")
}

// BenchmarkFig10bSleepSchemes regenerates Fig. 10(b): cumulative wake-ups
// of exponential vs fixed vs random sleep over 30 minutes.
func BenchmarkFig10bSleepSchemes(b *testing.B) {
	var expWakes, fixedWakes int
	for i := 0; i < b.N; i++ {
		series, err := netmaster.Fig10b(10, 30*netmaster.Minute, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			switch s.Scheme {
			case "exponential":
				expWakes = s.Minutes[len(s.Minutes)-1]
			case "fixed":
				fixedWakes = s.Minutes[len(s.Minutes)-1]
			}
		}
	}
	b.ReportMetric(float64(expWakes), "exp-wakes")
	b.ReportMetric(float64(fixedWakes), "fixed-wakes")
}

// BenchmarkFig10cThresholdSweep regenerates Fig. 10(c): prediction
// accuracy versus scheduler-attributed saving across δ.
func BenchmarkFig10cThresholdSweep(b *testing.B) {
	fixtures(b)
	cfg := netmaster.DefaultNetMasterConfig(benchModel)
	var accLow, accHigh float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := netmaster.Fig10c(benchVols[:1], cfg, benchHists, benchModel, []float64{0.1, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		accLow, accHigh = rows[0].Accuracy, rows[1].Accuracy
	}
	b.ReportMetric(accLow*100, "accuracy-%@0.1")
	b.ReportMetric(accHigh*100, "accuracy-%@0.4")
}

// BenchmarkUserExperience regenerates the Section VI-B accounting
// (paper: wrong decisions below 1%).
func BenchmarkUserExperience(b *testing.B) {
	fixtures(b)
	cfg := netmaster.DefaultNetMasterConfig(benchModel)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := netmaster.UserExperience(benchVols, cfg, benchHists, benchModel)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Rate() > worst {
				worst = r.Rate()
			}
		}
	}
	b.ReportMetric(worst*100, "worst-wrong-%")
}

// BenchmarkSchedulerApproximation measures the core algorithm against
// brute force on small instances (Lemma IV.1's bound is (1−ε)/2; observed
// ratios are far better).
func BenchmarkSchedulerApproximation(b *testing.B) {
	model := netmaster.Model3G()
	cfg := netmaster.DefaultSchedulerConfig()
	cfg.BandwidthBps = 1 // tight capacity forces real packing decisions
	cfg.SavedEnergy = func(a netmaster.SchedActivity) float64 { return model.SavedEnergy(a.ActiveSecs) }
	cfg.UseProb = func(netmaster.Instant) float64 { return 0.05 }
	s, err := netmaster.NewScheduler(cfg)
	if err != nil {
		b.Fatal(err)
	}
	u := []netmaster.Interval{
		{Start: 8 * 3600, End: 9 * 3600},
		{Start: 20 * 3600, End: 21 * 3600},
	}
	var tn []netmaster.SchedActivity
	for i := 0; i < 12; i++ {
		tn = append(tn, netmaster.SchedActivity{
			ID: i, Time: netmaster.Instant(i * 7000), Bytes: int64(400 + i*113), ActiveSecs: float64(3 + i%7),
		})
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Schedule(u, tn)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := s.BruteForce(u, tn)
		if err != nil {
			b.Fatal(err)
		}
		if opt.Objective > 0 {
			ratio = got.Objective / opt.Objective
		}
	}
	b.ReportMetric(ratio, "optimality-ratio")
}

// BenchmarkAblationEpsilon sweeps SinKnap's ε (the paper fixes 0.1):
// quality vs runtime of the scheduler's inner solver.
func BenchmarkAblationEpsilon(b *testing.B) {
	items := make([]netmaster.KnapsackItem, 120)
	for i := range items {
		items[i] = netmaster.KnapsackItem{ID: i, Profit: float64(1 + (i*37)%100), Weight: int64(1 + (i*61)%50)}
	}
	for _, eps := range []float64{0.02, 0.1, 0.5} {
		eps := eps
		b.Run(formatEps(eps), func(b *testing.B) {
			var profit float64
			for i := 0; i < b.N; i++ {
				sol, err := netmaster.SinKnap(items, 800, eps)
				if err != nil {
					b.Fatal(err)
				}
				profit = sol.Profit
			}
			b.ReportMetric(profit, "profit")
		})
	}
}

func formatEps(eps float64) string {
	switch eps {
	case 0.02:
		return "eps=0.02"
	case 0.1:
		return "eps=0.10"
	default:
		return "eps=0.50"
	}
}

// ablationSaving replays NetMaster with one component disabled.
func ablationSaving(b *testing.B, mutate func(*netmaster.NetMasterConfig)) float64 {
	b.Helper()
	tr := benchVols[0]
	cfg := netmaster.DefaultNetMasterConfig(benchModel)
	cfg.History = benchHists[tr.UserID]
	if mutate != nil {
		mutate(&cfg)
	}
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base, err := netmaster.Run(netmaster.BaselinePolicy{}, tr, benchModel)
	if err != nil {
		b.Fatal(err)
	}
	m, err := netmaster.Run(nm, tr, benchModel)
	if err != nil {
		b.Fatal(err)
	}
	return m.EnergySavingVs(base)
}

// BenchmarkAblationScheduler disables the knapsack scheduler (duty cycle
// only) to isolate the decision-making component's contribution.
func BenchmarkAblationScheduler(b *testing.B) {
	fixtures(b)
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saving = ablationSaving(b, func(c *netmaster.NetMasterConfig) { c.DisableScheduler = true })
	}
	b.ReportMetric(saving*100, "saving-%")
}

// BenchmarkAblationDutyCycle disables the real-time adjustment: every
// unscheduled screen-off transfer runs immediately.
func BenchmarkAblationDutyCycle(b *testing.B) {
	fixtures(b)
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saving = ablationSaving(b, func(c *netmaster.NetMasterConfig) { c.DisableDutyCycle = true })
	}
	b.ReportMetric(saving*100, "saving-%")
}

// BenchmarkAblationSpecialApps empties the allowlist: the user-experience
// safety net goes away while savings stay put.
func BenchmarkAblationSpecialApps(b *testing.B) {
	fixtures(b)
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saving = ablationSaving(b, func(c *netmaster.NetMasterConfig) { c.DisableSpecialApps = true })
	}
	b.ReportMetric(saving*100, "saving-%")
}

// BenchmarkAblationFullNetMaster is the non-ablated reference point.
func BenchmarkAblationFullNetMaster(b *testing.B) {
	fixtures(b)
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saving = ablationSaving(b, nil)
	}
	b.ReportMetric(saving*100, "saving-%")
}

// Micro-benchmarks of the load-bearing primitives.

func BenchmarkTraceGeneration(b *testing.B) {
	spec := netmaster.EvalCohort()[0]
	for i := 0; i < b.N; i++ {
		if _, err := netmaster.GenerateTrace(spec, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHabitMining(b *testing.B) {
	fixtures(b)
	tr := benchVols[0]
	cfg := netmaster.DefaultHabitConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netmaster.MineHabits(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetMasterPlan(b *testing.B) {
	fixtures(b)
	tr := benchVols[0]
	cfg := netmaster.DefaultNetMasterConfig(benchModel)
	cfg.History = benchHists[tr.UserID]
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netmaster.Run(nm, tr, benchModel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOraclePlan(b *testing.B) {
	fixtures(b)
	oracle, err := netmaster.NewOracle(benchModel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netmaster.Run(oracle, benchVols[0], benchModel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleQuarterYear stresses the full pipeline at scale: one
// volunteer over 90 days — generation, mining from 84 growing history
// prefixes, daily knapsack scheduling and duty-cycle simulation.
func BenchmarkScaleQuarterYear(b *testing.B) {
	fixtures(b)
	spec := netmaster.EvalCohort()[0]
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := netmaster.GenerateTrace(spec, 90)
		if err != nil {
			b.Fatal(err)
		}
		hist, err := netmaster.GenerateHistory(spec, 14)
		if err != nil {
			b.Fatal(err)
		}
		cfg := netmaster.DefaultNetMasterConfig(benchModel)
		cfg.History = hist
		nm, err := netmaster.NewNetMasterPolicy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		base, err := netmaster.Run(netmaster.BaselinePolicy{}, tr, benchModel)
		if err != nil {
			b.Fatal(err)
		}
		m, err := netmaster.Run(nm, tr, benchModel)
		if err != nil {
			b.Fatal(err)
		}
		saving = m.EnergySavingVs(base)
	}
	b.ReportMetric(saving*100, "saving-%")
}
