// Command netmaster-bench load-tests the serve tier: it synthesises an
// N-device cohort (reusing internal/synth's seeded volunteers as
// templates), drives it through POST /v1/fleet/ingest:batch at a fixed
// concurrency against a daemon or a -router front end, probes the
// merged fleet read path, and reports throughput, exact p50/p90/p99
// request latencies and the error rate against configurable SLOs.
// After the load phase it scrapes the target's raw metrics snapshot so
// the report also carries the server-observed per-endpoint quantiles
// and SLO burn state next to the client-side view.
//
// Usage:
//
//	netmaster-bench [-target http://127.0.0.1:8080] [-devices 100000]
//	                [-batch 500] [-concurrency 32] [-duration 10s]
//	                [-format text|json] [-out BENCH_serve.json]
//	                [-slo-error-rate 0.01] [-slo-p99 5000]
//
// Without -target the bench self-hosts an in-memory daemon, making the
// committed BENCH_serve.json reproducible with one command. The exit
// status is 1 when an SLO is violated, so CI can gate on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netmaster/internal/cliconfig"
	"netmaster/internal/metrics"
	"netmaster/internal/middleware"
	"netmaster/internal/power"
	"netmaster/internal/server"
	"netmaster/internal/slo"
	"netmaster/internal/synth"
	"netmaster/internal/tracing"
)

// Quantiles are exact (ceil-rank) order statistics over the recorded
// per-request latencies, in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// SLO records the configured ceilings and whether the run met them.
type SLO struct {
	MaxErrorRate float64 `json:"max_error_rate"`
	MaxP99Millis float64 `json:"max_p99_ms"`
	Pass         bool    `json:"pass"`
}

// EndpointLatency is one endpoint's server-side latency view,
// interpolated from the target's own per-endpoint histogram after the
// load phase. Unlike the client-side Quantiles these include the
// target's queueing but not the network or the bench's own scheduling.
type EndpointLatency struct {
	Endpoint string  `json:"endpoint"`
	Requests int64   `json:"requests"`
	P50      float64 `json:"p50"`
	P90      float64 `json:"p90"`
	P99      float64 `json:"p99"`
}

// ServerStats is the server-side half of the report, scraped from the
// target's raw metrics snapshot: per-endpoint latency quantiles plus
// the SLO burn state, so client- and server-observed latency can be
// compared in one document.
type ServerStats struct {
	Role            string            `json:"role"` // "server" or "router"
	Endpoints       []EndpointLatency `json:"endpoints"`
	SLORequests     int64             `json:"slo_requests"`
	SLOErrors       int64             `json:"slo_errors"`
	ErrorBurnRate   float64           `json:"error_burn_rate"`
	LatencyBurnRate float64           `json:"latency_burn_rate"`
}

// Result is the bench report. The JSON form is the schema of the
// committed BENCH_serve.json; a round-trip test pins it.
type Result struct {
	Target         string    `json:"target"` // "self" or the -target URL
	Devices        int       `json:"devices"`
	BatchSize      int       `json:"batch_size"`
	Concurrency    int       `json:"concurrency"`
	Requests       int64     `json:"requests"`
	Errors         int64     `json:"errors"`
	ItemFailures   int64     `json:"item_failures"`
	ErrorRate      float64   `json:"error_rate"`
	ElapsedMS      float64   `json:"elapsed_ms"`
	DevicesPerSec  float64   `json:"devices_per_sec"`
	RequestsPerSec float64   `json:"requests_per_sec"`
	Latency        Quantiles `json:"latency_ms"`
	FleetReadMS    float64   `json:"fleet_read_ms"`
	FleetDevices   int       `json:"fleet_devices"`
	SLO            SLO       `json:"slo"`
	// Server is the target's own view of the run (absent when the
	// target does not expose a raw metrics snapshot).
	Server *ServerStats `json:"server,omitempty"`
}

func main() {
	o := cliconfig.DefaultBench()
	o.Register(flag.CommandLine)
	flag.Parse()
	res, err := runBench(o, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-bench:", err)
		os.Exit(1)
	}
	if err := emit(o, res, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-bench:", err)
		os.Exit(1)
	}
	if !res.SLO.Pass {
		fmt.Fprintln(os.Stderr, "netmaster-bench: SLO violated")
		os.Exit(1)
	}
}

// buildCohort replays the seeded eval volunteers once and clones their
// metric snapshots across n synthetic device IDs — full telemetry per
// device without paying for n trace replays. With a Wi-Fi model the
// templates replay dual-radio: each trace carries cov coverage and the
// middleware pools deferred batches onto the NIC, so the ingested
// snapshots exercise the dual-radio metric surface.
func buildCohort(n, days int, wifi *power.WiFiModel, cov float64) ([]server.IngestRequest, error) {
	model := power.Model3G()
	var templates []*metrics.Snapshot
	for _, spec := range synth.EvalCohort() {
		if wifi != nil && cov > 0 {
			spec.WiFiCoverage = cov
		}
		tr, err := synth.Generate(spec, days)
		if err != nil {
			return nil, err
		}
		reg := metrics.NewRegistry()
		cfg := middleware.DefaultReplayConfig(model)
		cfg.WiFi = wifi
		cfg.Service.Metrics = reg
		cfg.Service.Tracing = tracing.NewSink(0)
		if _, err := middleware.Replay(tr, cfg); err != nil {
			return nil, err
		}
		snap := reg.Snapshot()
		templates = append(templates, &snap)
	}
	out := make([]server.IngestRequest, n)
	for i := range out {
		out[i] = server.IngestRequest{
			DeviceID: fmt.Sprintf("bench/dev-%06d", i),
			Metrics:  templates[i%len(templates)],
		}
	}
	return out, nil
}

// batches splits [0, n) into half-open index ranges of at most size.
func batches(n, size int) [][2]int {
	var out [][2]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// quantile returns the ceil-rank order statistic of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*q+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func runBench(o cliconfig.Bench, logw io.Writer) (Result, error) {
	if o.Devices <= 0 || o.Batch <= 0 || o.Concurrency <= 0 {
		return Result{}, fmt.Errorf("devices, batch and concurrency must be positive")
	}
	wifi, err := o.WiFi.Resolve()
	if err != nil {
		return Result{}, err
	}
	cohort, err := buildCohort(o.Devices, o.Days, wifi, o.WiFiCoverage)
	if err != nil {
		return Result{}, err
	}

	target := o.Target
	label := target
	if target == "" {
		// Self-host an in-memory daemon sized so admission control never
		// sheds the bench's own concurrency.
		maxIF := 64
		if 2*o.Concurrency > maxIF {
			maxIF = 2 * o.Concurrency
		}
		srv, err := server.New(server.Config{
			Addr:           "127.0.0.1:0",
			MaxInFlight:    maxIF,
			CacheSize:      128,
			RequestTimeout: 120 * time.Second,
			ShutdownGrace:  time.Second,
			Parallelism:    o.Parallelism,
			Metrics:        metrics.NewRegistry(),
			// Burn tracking on the self-hosted daemon mirrors the bench's
			// own SLO flags, so the scraped server block reports burn
			// against the same objectives the exit status gates on.
			SLO: slo.Config{TargetP99MS: o.SLOP99Millis, TargetErrorRate: o.SLOErrorRate},
		})
		if err != nil {
			return Result{}, err
		}
		if err := srv.Start(); err != nil {
			return Result{}, err
		}
		defer func() {
			srv.Shutdown(context.Background())
			srv.Close()
		}()
		target = "http://" + srv.Addr()
		label = "self"
	}
	client := server.NewClient(target, nil)
	ctx := context.Background()

	work := batches(len(cohort), o.Batch)
	fmt.Fprintf(logw, "netmaster-bench: %d devices in %d batches of %d against %s, concurrency %d\n",
		o.Devices, len(work), o.Batch, label, o.Concurrency)

	var (
		next         atomic.Int64
		errs         atomic.Int64
		itemFailures atomic.Int64
		latMu        sync.Mutex
		latencies    []float64
	)
	start := time.Now()
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				pass := int(n) / len(work)
				// Every batch runs at least once; extra passes re-ingest
				// the same cohort until the duration budget is spent.
				if pass > 0 && (deadline.IsZero() || time.Now().After(deadline)) {
					return
				}
				rng := work[int(n)%len(work)]
				req := server.BatchIngestRequest{
					RequestID: fmt.Sprintf("bench-%d", n),
					Items:     cohort[rng[0]:rng[1]],
				}
				t0 := time.Now()
				resp, err := client.IngestBatch(ctx, req)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil {
					errs.Add(1)
					continue
				}
				itemFailures.Add(int64(resp.Failed))
				latMu.Lock()
				latencies = append(latencies, ms)
				latMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	requests := next.Load()
	// Workers over-draw the counter by up to Concurrency when they bail
	// out on the pass boundary; only issued requests count.
	if issued := int64(len(latencies)) + errs.Load(); issued < requests {
		requests = issued
	}
	sort.Float64s(latencies)

	// The read probe: the merged fleet exposition (on a router this fans
	// out to every shard), plus the health document for the fleet size.
	t0 := time.Now()
	if _, err := client.Metrics(ctx, "fleet"); err != nil {
		return Result{}, fmt.Errorf("fleet metrics probe: %w", err)
	}
	fleetReadMS := float64(time.Since(t0)) / float64(time.Millisecond)
	fleetDevices, err := probeDevices(ctx, client)
	if err != nil {
		return Result{}, fmt.Errorf("health probe: %w", err)
	}

	res := Result{
		Target:       label,
		Devices:      o.Devices,
		BatchSize:    o.Batch,
		Concurrency:  o.Concurrency,
		Requests:     requests,
		Errors:       errs.Load(),
		ItemFailures: itemFailures.Load(),
		ElapsedMS:    float64(elapsed) / float64(time.Millisecond),
		Latency: Quantiles{
			P50: quantile(latencies, 0.50),
			P90: quantile(latencies, 0.90),
			P99: quantile(latencies, 0.99),
			Max: quantile(latencies, 1.00),
		},
		FleetReadMS:  fleetReadMS,
		FleetDevices: fleetDevices,
		SLO:          SLO{MaxErrorRate: o.SLOErrorRate, MaxP99Millis: o.SLOP99Millis},
	}
	if requests > 0 {
		res.ErrorRate = float64(res.Errors) / float64(requests)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		devicesDone := (requests - res.Errors) * int64(o.Batch)
		if devicesDone > int64(o.Devices) && o.Duration == 0 {
			devicesDone = int64(o.Devices)
		}
		res.DevicesPerSec = float64(devicesDone) / secs
		res.RequestsPerSec = float64(requests) / secs
	}
	res.SLO.Pass = res.ErrorRate <= o.SLOErrorRate && res.Latency.P99 <= o.SLOP99Millis
	if stats, err := scrapeServer(ctx, client); err != nil {
		// Non-fatal: an older target without the raw-snapshot endpoint
		// still yields the client-side report.
		fmt.Fprintf(logw, "netmaster-bench: server scrape skipped: %v\n", err)
	} else {
		res.Server = stats
	}
	return res, nil
}

// scrapeServer reads the target's raw metrics snapshot and distils the
// server-side view: per-endpoint latency quantiles (interpolated from
// the exact merge-stable histogram buckets) and the SLO burn state.
func scrapeServer(ctx context.Context, c *server.Client) (*ServerStats, error) {
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	stats := &ServerStats{Role: "server"}
	if _, ok := snap.Counters["router_requests_total"]; ok {
		stats.Role = "router"
	}
	prefix := stats.Role + "_http_"
	for name, hs := range snap.Histograms {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, "_latency_ms") {
			continue
		}
		endpoint := strings.TrimSuffix(strings.TrimPrefix(name, prefix), "_latency_ms")
		if hs.Count == 0 {
			continue
		}
		ep := EndpointLatency{
			Endpoint: endpoint,
			Requests: snap.Counters[prefix+endpoint+"_requests_total"],
		}
		for _, q := range []struct {
			q   float64
			dst *float64
		}{{0.50, &ep.P50}, {0.90, &ep.P90}, {0.99, &ep.P99}} {
			v, err := slo.HistogramQuantile(hs, q.q)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			*q.dst = v
		}
		stats.Endpoints = append(stats.Endpoints, ep)
	}
	sort.Slice(stats.Endpoints, func(i, j int) bool {
		return stats.Endpoints[i].Endpoint < stats.Endpoints[j].Endpoint
	})
	stats.SLORequests = snap.Counters[stats.Role+"_slo_requests_total"]
	stats.SLOErrors = snap.Counters[stats.Role+"_slo_errors_total"]
	stats.ErrorBurnRate = snap.Gauges[stats.Role+"_slo_error_burn_rate"]
	stats.LatencyBurnRate = snap.Gauges[stats.Role+"_slo_latency_burn_rate"]
	return stats, nil
}

// probeDevices reads the fleet size out of /healthz; the loose decode
// covers both the daemon's and the router's health document.
func probeDevices(ctx context.Context, c *server.Client) (int, error) {
	h, err := c.Healthz(ctx)
	if err != nil {
		return 0, err
	}
	return h.Devices, nil
}

// renderJSON is the canonical machine form (and BENCH_serve.json's
// content): two-space indent, trailing newline.
func renderJSON(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// renderText is the human form.
func renderText(w io.Writer, r Result) error {
	verdict := "FAIL"
	if r.SLO.Pass {
		verdict = "PASS"
	}
	_, err := fmt.Fprintf(w,
		"target:      %s\n"+
			"cohort:      %d devices, batches of %d, concurrency %d\n"+
			"requests:    %d (%d errors, %d item failures, error rate %.4f)\n"+
			"elapsed:     %.1f ms\n"+
			"throughput:  %.1f devices/s (%.1f req/s)\n"+
			"latency ms:  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n"+
			"fleet read:  %.1f ms (%d devices)\n"+
			"SLO:         %s (error rate <= %.4f, p99 <= %.1f ms)\n",
		r.Target, r.Devices, r.BatchSize, r.Concurrency,
		r.Requests, r.Errors, r.ItemFailures, r.ErrorRate,
		r.ElapsedMS, r.DevicesPerSec, r.RequestsPerSec,
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Max,
		r.FleetReadMS, r.FleetDevices,
		verdict, r.SLO.MaxErrorRate, r.SLO.MaxP99Millis)
	if err != nil || r.Server == nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "server side: role %s, slo burn error %.3f latency %.3f (%d reqs, %d errors)\n",
		r.Server.Role, r.Server.ErrorBurnRate, r.Server.LatencyBurnRate,
		r.Server.SLORequests, r.Server.SLOErrors); err != nil {
		return err
	}
	for _, ep := range r.Server.Endpoints {
		if _, err := fmt.Fprintf(w, "  %-16s p50 %.1f  p90 %.1f  p99 %.1f  (%d reqs)\n",
			ep.Endpoint, ep.P50, ep.P90, ep.P99, ep.Requests); err != nil {
			return err
		}
	}
	return nil
}

// emit writes the report in the selected format to stdout and -out.
func emit(o cliconfig.Bench, res Result, stdout io.Writer) error {
	render := renderText
	if o.Format == "json" {
		render = renderJSON
	} else if o.Format != "text" {
		return fmt.Errorf("unknown format %q (want text or json)", o.Format)
	}
	if err := render(stdout, res); err != nil {
		return err
	}
	if o.Out != "" {
		f, err := os.Create(o.Out)
		if err != nil {
			return err
		}
		if err := render(f, res); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
