package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/cliconfig"
)

// The goldens pin the bench report's two renderings over one canned
// result, so output changes are deliberate. Regenerate with
//
//	go test ./cmd/netmaster-bench -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// cannedResult is a fixed report: the goldens test rendering, not the
// machine the tests run on.
func cannedResult() Result {
	return Result{
		Target:         "self",
		Devices:        100000,
		BatchSize:      500,
		Concurrency:    32,
		Requests:       200,
		Errors:         1,
		ItemFailures:   3,
		ErrorRate:      0.005,
		ElapsedMS:      1234.5,
		DevicesPerSec:  80600.2,
		RequestsPerSec: 162.0,
		Latency:        Quantiles{P50: 180.25, P90: 320.5, P99: 410.75, Max: 450.125},
		FleetReadMS:    85.375,
		FleetDevices:   100000,
		SLO:            SLO{MaxErrorRate: 0.01, MaxP99Millis: 5000, Pass: true},
		Server: &ServerStats{
			Role: "server",
			Endpoints: []EndpointLatency{
				{Endpoint: "fleet_report", Requests: 1, P50: 40.5, P90: 70.25, P99: 80.125},
				{Endpoint: "ingest_batch", Requests: 200, P50: 150.5, P90: 300.25, P99: 400.125},
			},
			SLORequests:     201,
			SLOErrors:       1,
			ErrorBurnRate:   0.498,
			LatencyBurnRate: 0,
		},
	}
}

func TestGoldenTextReport(t *testing.T) {
	var buf bytes.Buffer
	if err := renderText(&buf, cannedResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench_text.golden", buf.Bytes())
}

func TestGoldenJSONReport(t *testing.T) {
	var buf bytes.Buffer
	if err := renderJSON(&buf, cannedResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench_json.golden", buf.Bytes())
}

// TestBenchServeJSONSchemaPin: the committed BENCH_serve.json decodes
// strictly into Result (no unknown fields, nothing dropped) and
// re-encodes byte-identically — the schema and the committed artifact
// cannot drift apart silently.
func TestBenchServeJSONSchemaPin(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("missing committed BENCH_serve.json: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var r Result
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("BENCH_serve.json does not match the Result schema: %v", err)
	}
	if r.Devices < 100000 {
		t.Errorf("committed bench covers %d devices, want >= 100000", r.Devices)
	}
	if r.Latency.P50 <= 0 || r.Latency.P90 <= 0 || r.Latency.P99 <= 0 {
		t.Errorf("committed bench missing latency quantiles: %+v", r.Latency)
	}
	if r.DevicesPerSec <= 0 {
		t.Errorf("committed bench missing throughput: %f", r.DevicesPerSec)
	}
	if !r.SLO.Pass {
		t.Errorf("committed bench violates its own SLO: %+v", r.SLO)
	}
	if r.Server == nil || len(r.Server.Endpoints) == 0 {
		t.Fatalf("committed bench missing the server-side block: %+v", r.Server)
	}
	var batch *EndpointLatency
	for i := range r.Server.Endpoints {
		if r.Server.Endpoints[i].Endpoint == "ingest_batch" {
			batch = &r.Server.Endpoints[i]
		}
	}
	if batch == nil || batch.P99 <= 0 || batch.Requests <= 0 {
		t.Errorf("committed bench missing server-side ingest_batch quantiles: %+v", r.Server.Endpoints)
	}
	var buf bytes.Buffer
	if err := renderJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Errorf("BENCH_serve.json does not round-trip through Result:\n%s\nvs\n%s", buf.Bytes(), raw)
	}
}

func TestQuantileExactRanks(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1.0, 10}}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty data = %v, want 0", got)
	}
}

func TestBatchesCoverEveryIndexOnce(t *testing.T) {
	seen := map[int]bool{}
	for _, rng := range batches(1042, 100) {
		for i := rng[0]; i < rng[1]; i++ {
			if seen[i] {
				t.Fatalf("index %d covered twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 1042 {
		t.Errorf("batches cover %d indices, want 1042", len(seen))
	}
}

// TestBenchSelfHostedSmallRun drives the real pipeline end to end on a
// small cohort: zero errors, the full fleet ingested, SLO pass.
func TestBenchSelfHostedSmallRun(t *testing.T) {
	o := cliconfig.DefaultBench()
	o.Devices = 120
	o.Batch = 25
	o.Concurrency = 4
	o.Days = 2
	res, err := runBench(o, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.ItemFailures != 0 {
		t.Errorf("bench saw %d errors, %d item failures on a healthy daemon", res.Errors, res.ItemFailures)
	}
	if res.FleetDevices != o.Devices {
		t.Errorf("daemon holds %d devices after the bench, want %d", res.FleetDevices, o.Devices)
	}
	if res.Requests != int64(len(batches(o.Devices, o.Batch))) {
		t.Errorf("bench made %d requests, want %d", res.Requests, len(batches(o.Devices, o.Batch)))
	}
	if !res.SLO.Pass {
		t.Errorf("small self-hosted run violated the default SLO: %+v", res)
	}
	if res.Server == nil {
		t.Fatal("self-hosted run produced no server-side block")
	}
	if res.Server.Role != "server" {
		t.Errorf("server block role = %q, want server", res.Server.Role)
	}
	found := false
	for _, ep := range res.Server.Endpoints {
		if ep.Endpoint == "ingest_batch" && ep.Requests == res.Requests && ep.P99 > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("server block lacks a matching ingest_batch entry: %+v", res.Server.Endpoints)
	}
	if res.Server.SLORequests < res.Requests {
		t.Errorf("server SLO saw %d requests, bench made %d", res.Server.SLORequests, res.Requests)
	}
}
