// Command netmaster-sim replays a scheduling policy over a usage trace and
// prints the full metric set: radio energy, radio-on time, bandwidth
// utilization and user-experience impact, with savings relative to the
// unmanaged baseline.
//
// Usage:
//
//	netmaster-sim -trace user.trace [-policy netmaster|oracle|delay|batch|baseline]
//	              [-interval 60] [-batch 5] [-model 3g|lte] [-history hist.trace]
//	netmaster-sim -gen volunteer1 -days 21 -policy netmaster   # synthetic input
package main

import (
	"flag"
	"fmt"
	"os"

	"netmaster/internal/device"
	"netmaster/internal/policy"
	"netmaster/internal/power"
	"netmaster/internal/report"
	"netmaster/internal/simtime"
	"netmaster/internal/synth"
	"netmaster/internal/trace"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "trace file to replay")
		gen         = flag.String("gen", "", "generate the named cohort user instead of reading a trace")
		days        = flag.Int("days", 21, "days for -gen")
		policyName  = flag.String("policy", "netmaster", "policy: baseline, netmaster, oracle, delay, batch")
		interval    = flag.Int("interval", 60, "delay interval seconds (policy=delay)")
		batchSize   = flag.Int("batch", 5, "batch size (policy=batch)")
		modelName   = flag.String("model", "3g", "radio model: 3g or lte")
		historyPath = flag.String("history", "", "optional pre-collected history trace (policy=netmaster)")
		perApp      = flag.Bool("per-app", false, "print eprof-style per-app energy attribution")
		timelineDay = flag.Int("timeline", -1, "render an ASCII radio timeline of this day (baseline vs the policy)")
	)
	flag.Parse()
	if err := run(*tracePath, *gen, *days, *policyName, *interval, *batchSize, *modelName, *historyPath, *perApp, *timelineDay); err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-sim:", err)
		os.Exit(1)
	}
}

func run(tracePath, gen string, days int, policyName string, interval, batchSize int, modelName, historyPath string, perApp bool, timelineDay int) error {
	var model *power.Model
	switch modelName {
	case "3g":
		model = power.Model3G()
	case "lte":
		model = power.ModelLTE()
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	t, history, err := loadTrace(tracePath, gen, days, historyPath)
	if err != nil {
		return err
	}

	p, err := buildPolicy(policyName, interval, batchSize, model, history)
	if err != nil {
		return err
	}

	base, err := device.Run(policy.Baseline{}, t, model)
	if err != nil {
		return err
	}
	m := base
	if p != nil {
		m, err = device.Run(p, t, model)
		if err != nil {
			return err
		}
	}

	tbl := report.NewTable(fmt.Sprintf("%s on %s (%d days, %s)", m.PolicyName, t.UserID, t.Days, model.Name),
		"metric", "value", "baseline", "saving/gain")
	tbl.AddRow("radio energy (J)", m.Radio.EnergyJ, base.Radio.EnergyJ, report.Percent(m.EnergySavingVs(base)))
	tbl.AddRow("radio-on time (h)", m.Radio.RadioOnSecs/3600, base.Radio.RadioOnSecs/3600, report.Percent(m.RadioOnSavingVs(base)))
	tbl.AddRow("promotions", m.Radio.Promotions, base.Radio.Promotions, "")
	tbl.AddRow("tail energy (J)", m.Radio.TailEnergyJ, base.Radio.TailEnergyJ, "")
	down, up, pdown, pup := m.RateIncreaseVs(base)
	tbl.AddRow("avg down rate (kB/s)", m.AvgDownRateBps/1024, base.AvgDownRateBps/1024, fmt.Sprintf("%.2fx", down))
	tbl.AddRow("avg up rate (kB/s)", m.AvgUpRateBps/1024, base.AvgUpRateBps/1024, fmt.Sprintf("%.2fx", up))
	tbl.AddRow("peak down rate (kB/s)", m.PeakDownRateBps/1024, base.PeakDownRateBps/1024, fmt.Sprintf("%.2fx", pdown))
	tbl.AddRow("peak up rate (kB/s)", m.PeakUpRateBps/1024, base.PeakUpRateBps/1024, fmt.Sprintf("%.2fx", pup))
	tbl.AddRow("duty wake-ups", m.WakeUps, 0, "")
	tbl.AddRow("wake energy (J)", m.WakeEnergyJ, 0, "")
	tbl.AddRow("interactions", m.Interactions, base.Interactions, "")
	tbl.AddRow("wrong decisions", m.WrongDecisions, 0, report.Percent(m.WrongDecisionRate()))
	tbl.AddRow("affected interactions", m.AffectedActivities, 0, report.Percent(m.AffectedRate()))
	tbl.AddRow("deferred transfers", m.Deferred, 0, fmt.Sprintf("mean %.0fs max %.0fs", m.MeanDeferSecs, m.MaxDeferSecs))
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if perApp {
		if err := renderPerApp(t, p, model); err != nil {
			return err
		}
	}
	if timelineDay >= 0 {
		return renderTimeline(t, p, model, timelineDay)
	}
	return nil
}

// renderTimeline prints the baseline's and the policy's radio Gantt for
// one day side by side.
func renderTimeline(t *trace.Trace, p device.Policy, model *power.Model, day int) error {
	fmt.Printf("\nradio timeline, day %d (%s)\n", day, device.TimelineLegend)
	basePlan, err := (policy.Baseline{}).Plan(t)
	if err != nil {
		return err
	}
	if err := device.RenderDayTimeline(os.Stdout, basePlan, model, day, 3); err != nil {
		return err
	}
	if p == nil {
		return nil
	}
	plan, err := p.Plan(t)
	if err != nil {
		return err
	}
	return device.RenderDayTimeline(os.Stdout, plan, model, day, 3)
}

// renderPerApp prints the eprof-style per-app energy attribution for the
// chosen policy (or the baseline when no policy was selected).
func renderPerApp(t *trace.Trace, p device.Policy, model *power.Model) error {
	if p == nil {
		p = policy.Baseline{}
	}
	plan, err := p.Plan(t)
	if err != nil {
		return err
	}
	shares, err := device.EnergyByApp(plan, model)
	if err != nil {
		return err
	}
	tbl := report.NewTable("per-app radio energy (tail blamed on the last user of the radio)",
		"app", "total (J)", "active (J)", "promo (J)", "tail (J)", "bursts")
	for _, s := range shares {
		tbl.AddRow(string(s.App), s.EnergyJ, s.ActiveJ, s.PromoJ, s.TailJ, s.Bursts)
	}
	return tbl.Render(os.Stdout)
}

func loadTrace(tracePath, gen string, days int, historyPath string) (*trace.Trace, *trace.Trace, error) {
	var history *trace.Trace
	if historyPath != "" {
		h, err := trace.ReadFile(historyPath)
		if err != nil {
			return nil, nil, err
		}
		history = h
	}
	if tracePath != "" {
		t, err := trace.ReadFile(tracePath)
		return t, history, err
	}
	if gen == "" {
		return nil, nil, fmt.Errorf("need -trace FILE or -gen USER")
	}
	for _, spec := range append(synth.MotivationCohort(), synth.EvalCohort()...) {
		if spec.ID != gen {
			continue
		}
		t, err := synth.Generate(spec, days)
		if err != nil {
			return nil, nil, err
		}
		if history == nil {
			history, err = synth.GenerateHistory(spec, 14)
			if err != nil {
				return nil, nil, err
			}
		}
		return t, history, nil
	}
	return nil, nil, fmt.Errorf("no cohort user named %q", gen)
}

func buildPolicy(name string, interval, batchSize int, model *power.Model, history *trace.Trace) (device.Policy, error) {
	switch name {
	case "baseline":
		return nil, nil // metrics of the baseline itself
	case "netmaster":
		cfg := policy.DefaultNetMasterConfig(model)
		cfg.History = history
		return policy.NewNetMaster(cfg)
	case "oracle":
		return policy.NewOracle(model)
	case "delay":
		return policy.NewDelay(simtime.Duration(interval))
	case "batch":
		return policy.NewBatch(batchSize, 0)
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
