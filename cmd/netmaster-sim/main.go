// Command netmaster-sim replays a scheduling policy over a usage trace and
// prints the full metric set: radio energy, radio-on time, bandwidth
// utilization and user-experience impact, with savings relative to the
// unmanaged baseline.
//
// Usage:
//
//	netmaster-sim -trace user.trace [-policy netmaster|oracle|delay|batch|baseline|online]
//	              [-interval 60] [-batch 5] [-model 3g|lte] [-history hist.trace]
//	netmaster-sim -gen volunteer1 -days 21 -policy netmaster   # synthetic input
//	netmaster-sim -gen volunteer1 -policy online -fault-rate 0.1 -fault-seed 3   # chaos replay
//
// The online policy replays the middleware service event by event (the
// deployment path) instead of planning offline. With -fault-rate > 0 or
// -fault-outage set it runs under a seeded fault schedule and prints the
// service's health counters next to the energy metrics.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"netmaster/internal/atomicfile"
	"netmaster/internal/cliconfig"
	"netmaster/internal/device"
	"netmaster/internal/faults"
	"netmaster/internal/metrics"
	"netmaster/internal/middleware"
	"netmaster/internal/policy"
	"netmaster/internal/power"
	"netmaster/internal/report"
	"netmaster/internal/simtime"
	"netmaster/internal/synth"
	"netmaster/internal/trace"
	"netmaster/internal/tracing"
)

// options is the netmaster-sim flag set, shared via cliconfig so the
// common flags (-model, -obs-dir, ...) stay aligned across binaries;
// run is kept testable by taking it whole.
type options = cliconfig.Sim

func main() {
	o := cliconfig.DefaultSim()
	o.Register(flag.CommandLine)
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-sim:", err)
		os.Exit(1)
	}
}

// observed bundles the per-run observability plumbing: a fresh registry
// and trace sink per invocation (never the process-wide defaults, so
// repeated runs in one process — tests — stay independent), written to
// the -metrics-out / -trace-out files once the run finishes.
type observed struct {
	reg  *metrics.Registry
	sink *tracing.Sink
	o    options
}

// pprofOnce guards the expvar publication: expvar panics on duplicate
// names, and the debug server is process-wide anyway.
var pprofOnce sync.Once

func newObserved(o options) *observed {
	if o.MetricsOut == "" && o.TraceOut == "" && o.ObsDir == "" && o.PprofAddr == "" {
		return &observed{o: o}
	}
	ob := &observed{reg: metrics.NewRegistry(), sink: tracing.NewSink(o.TraceCap), o: o}
	if o.PprofAddr != "" {
		pprofOnce.Do(func() {
			expvar.Publish("netmaster_metrics", ob.reg)
			go func() {
				if err := http.ListenAndServe(o.PprofAddr, nil); err != nil {
					fmt.Fprintln(os.Stderr, "netmaster-sim: pprof server:", err)
				}
			}()
		})
	}
	return ob
}

// flush writes the collected metrics and trace to their output files.
// All writes are atomic (temp file + rename), so a crashed or killed run
// never leaves a torn snapshot where a previous good one stood, and
// netmaster-analyze never reads a half-written cohort. user names the
// device directory under -obs-dir.
func (ob *observed) flush(user string) error {
	if ob.o.MetricsOut != "" {
		if err := atomicfile.WriteFile(ob.o.MetricsOut, ob.reg.WriteJSON); err != nil {
			return err
		}
	}
	if ob.o.TraceOut != "" {
		if err := atomicfile.WriteFile(ob.o.TraceOut, ob.sink.WriteJSONL); err != nil {
			return err
		}
	}
	if ob.o.ObsDir != "" {
		dir := filepath.Join(ob.o.ObsDir, user)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := atomicfile.WriteFile(filepath.Join(dir, "metrics.json"), ob.reg.WriteJSON); err != nil {
			return err
		}
		if err := atomicfile.WriteFile(filepath.Join(dir, "trace.jsonl"), ob.sink.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

func run(o options, stdout io.Writer) error {
	model, err := cliconfig.ResolveModel(o.ModelName)
	if err != nil {
		return err
	}
	wifi, err := o.WiFi.Resolve()
	if err != nil {
		return err
	}

	t, history, err := loadTrace(o.TracePath, o.Gen, o.Days, o.HistoryPath, o.WiFiCoverage)
	if err != nil {
		return err
	}

	ob := newObserved(o)
	var p device.Policy
	var health *middleware.Health
	var faultStats faults.Stats
	if o.PolicyName == "online" {
		plan, h, fs, err := runOnline(t, model, wifi, o, ob)
		if err != nil {
			return err
		}
		p = &plannedPolicy{name: plan.PolicyName, plan: plan}
		health, faultStats = h, fs
	} else {
		p, err = buildPolicy(o.PolicyName, o.Interval, o.BatchSize, model, wifi, history, ob)
		if err != nil {
			return err
		}
	}

	// The baseline stays all-cellular so savings remain comparable with
	// single-radio runs; the policy meters on both radios when the NIC
	// is enabled.
	base, err := device.Run(policy.Baseline{}, t, model)
	if err != nil {
		return err
	}
	m := base
	if p != nil {
		if wifi != nil {
			m, err = device.RunRadios(p, t, model, wifi)
		} else {
			m, err = device.Run(p, t, model)
		}
		if err != nil {
			return err
		}
	}

	tbl := report.NewTable(fmt.Sprintf("%s on %s (%d days, %s)", m.PolicyName, t.UserID, t.Days, model.Name),
		"metric", "value", "baseline", "saving/gain")
	tbl.AddRow("radio energy (J)", m.Radio.EnergyJ, base.Radio.EnergyJ, report.Percent(m.EnergySavingVs(base)))
	tbl.AddRow("radio-on time (h)", m.Radio.RadioOnSecs/3600, base.Radio.RadioOnSecs/3600, report.Percent(m.RadioOnSavingVs(base)))
	tbl.AddRow("promotions", m.Radio.Promotions, base.Radio.Promotions, "")
	tbl.AddRow("tail energy (J)", m.Radio.TailEnergyJ, base.Radio.TailEnergyJ, "")
	down, up, pdown, pup := m.RateIncreaseVs(base)
	tbl.AddRow("avg down rate (kB/s)", m.AvgDownRateBps/1024, base.AvgDownRateBps/1024, fmt.Sprintf("%.2fx", down))
	tbl.AddRow("avg up rate (kB/s)", m.AvgUpRateBps/1024, base.AvgUpRateBps/1024, fmt.Sprintf("%.2fx", up))
	tbl.AddRow("peak down rate (kB/s)", m.PeakDownRateBps/1024, base.PeakDownRateBps/1024, fmt.Sprintf("%.2fx", pdown))
	tbl.AddRow("peak up rate (kB/s)", m.PeakUpRateBps/1024, base.PeakUpRateBps/1024, fmt.Sprintf("%.2fx", pup))
	tbl.AddRow("duty wake-ups", m.WakeUps, 0, "")
	tbl.AddRow("wake energy (J)", m.WakeEnergyJ, 0, "")
	if wifi != nil {
		tbl.AddRow("wifi energy (J)", m.WiFi.EnergyJ, 0, "")
		tbl.AddRow("wifi associations", m.WiFi.Promotions, 0, "")
	}
	tbl.AddRow("interactions", m.Interactions, base.Interactions, "")
	tbl.AddRow("wrong decisions", m.WrongDecisions, 0, report.Percent(m.WrongDecisionRate()))
	tbl.AddRow("affected interactions", m.AffectedActivities, 0, report.Percent(m.AffectedRate()))
	tbl.AddRow("deferred transfers", m.Deferred, 0, fmt.Sprintf("mean %.0fs max %.0fs", m.MeanDeferSecs, m.MaxDeferSecs))
	if err := tbl.Render(stdout); err != nil {
		return err
	}
	if health != nil {
		if err := renderHealth(stdout, *health, faultStats); err != nil {
			return err
		}
	}
	if o.PerApp {
		if err := renderPerApp(stdout, t, p, model); err != nil {
			return err
		}
	}
	if o.TimelineDay >= 0 {
		if err := renderTimeline(stdout, t, p, model, o.TimelineDay); err != nil {
			return err
		}
	}
	return ob.flush(t.UserID)
}

// plannedPolicy adapts an already-computed plan (the online replay's) to
// the device.Policy interface the renderers expect.
type plannedPolicy struct {
	name string
	plan *device.Plan
}

func (p *plannedPolicy) Name() string { return p.name }

func (p *plannedPolicy) Plan(t *trace.Trace) (*device.Plan, error) { return p.plan, nil }

// runOnline replays the middleware service over the trace — plainly, or
// under the flags' fault schedule.
func runOnline(t *trace.Trace, model *power.Model, wifi *power.WiFiModel, o options, ob *observed) (*device.Plan, *middleware.Health, faults.Stats, error) {
	cfg := middleware.DefaultChaosConfig(model)
	cfg.Replay.WiFi = wifi
	cfg.Replay.Service.Metrics = ob.reg
	cfg.Replay.Service.Tracing = ob.sink
	cfg.Faults = faults.Uniform(o.FaultSeed, o.FaultRate)
	if o.FaultOutage != "" {
		iv, err := parseOutage(o.FaultOutage)
		if err != nil {
			return nil, nil, faults.Stats{}, err
		}
		cfg.Faults.RadioOutages = []simtime.Interval{iv}
	}
	if o.MaxDeferral > 0 {
		cfg.MaxDeferral = simtime.Duration(o.MaxDeferral)
	}
	if cfg.Faults.IsZero() {
		res, err := middleware.Replay(t, cfg.Replay)
		if err != nil {
			return nil, nil, faults.Stats{}, err
		}
		return res.Plan, nil, faults.Stats{}, nil
	}
	res, err := middleware.ReplayChaos(t, cfg)
	if err != nil {
		return nil, nil, faults.Stats{}, err
	}
	return res.Plan, &res.Health, res.Faults, nil
}

func parseOutage(s string) (simtime.Interval, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return simtime.Interval{}, fmt.Errorf("fault outage %q: want start:end seconds", s)
	}
	start, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return simtime.Interval{}, fmt.Errorf("fault outage start: %w", err)
	}
	end, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return simtime.Interval{}, fmt.Errorf("fault outage end: %w", err)
	}
	if end < start {
		return simtime.Interval{}, fmt.Errorf("fault outage %q inverted", s)
	}
	return simtime.Interval{Start: simtime.Instant(start), End: simtime.Instant(end)}, nil
}

// renderHealth prints the service's fault counters and degradation mode
// after a chaos replay.
func renderHealth(w io.Writer, h middleware.Health, fs faults.Stats) error {
	tbl := report.NewTable(fmt.Sprintf("service health (mode %s, %d faults absorbed)", h.Mode, h.FaultsAbsorbed()),
		"counter", "value")
	tbl.AddRow("mode transitions", h.ModeTransitions)
	tbl.AddRow("db write faults", h.DBFaults)
	tbl.AddRow("mining faults", h.MineFaults)
	tbl.AddRow("stale events", h.StaleEvents)
	tbl.AddRow("dropped events", h.DroppedEvents)
	tbl.AddRow("duplicated events", h.DupEvents)
	tbl.AddRow("reordered events", h.ReorderedEvents)
	tbl.AddRow("radio retries", h.RadioRetries)
	tbl.AddRow("sync retries", h.SyncRetries)
	tbl.AddRow("transfer retries", h.TransferRetries)
	tbl.AddRow("radio give-ups", h.RadioGiveUps)
	tbl.AddRow("sync give-ups", h.SyncGiveUps)
	tbl.AddRow("deadline flushes", h.DeadlineFlushes)
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "fault injector: %v\n", fs)
	return nil
}

// renderTimeline prints the baseline's and the policy's radio Gantt for
// one day side by side.
func renderTimeline(w io.Writer, t *trace.Trace, p device.Policy, model *power.Model, day int) error {
	fmt.Fprintf(w, "\nradio timeline, day %d (%s)\n", day, device.TimelineLegend)
	basePlan, err := (policy.Baseline{}).Plan(t)
	if err != nil {
		return err
	}
	if err := device.RenderDayTimeline(w, basePlan, model, day, 3); err != nil {
		return err
	}
	if p == nil {
		return nil
	}
	plan, err := p.Plan(t)
	if err != nil {
		return err
	}
	return device.RenderDayTimeline(w, plan, model, day, 3)
}

// renderPerApp prints the eprof-style per-app energy attribution for the
// chosen policy (or the baseline when no policy was selected).
func renderPerApp(w io.Writer, t *trace.Trace, p device.Policy, model *power.Model) error {
	if p == nil {
		p = policy.Baseline{}
	}
	plan, err := p.Plan(t)
	if err != nil {
		return err
	}
	shares, err := device.EnergyByApp(plan, model)
	if err != nil {
		return err
	}
	tbl := report.NewTable("per-app radio energy (tail blamed on the last user of the radio)",
		"app", "total (J)", "active (J)", "promo (J)", "tail (J)", "bursts")
	for _, s := range shares {
		tbl.AddRow(string(s.App), s.EnergyJ, s.ActiveJ, s.PromoJ, s.TailJ, s.Bursts)
	}
	return tbl.Render(w)
}

func loadTrace(tracePath, gen string, days int, historyPath string, wifiCoverage float64) (*trace.Trace, *trace.Trace, error) {
	var history *trace.Trace
	if historyPath != "" {
		h, err := trace.ReadFile(historyPath)
		if err != nil {
			return nil, nil, err
		}
		history = h
	}
	if tracePath != "" {
		t, err := trace.ReadFile(tracePath)
		return t, history, err
	}
	if gen == "" {
		return nil, nil, fmt.Errorf("need -trace FILE or -gen USER")
	}
	for _, spec := range append(synth.MotivationCohort(), synth.EvalCohort()...) {
		if spec.ID != gen {
			continue
		}
		spec.WiFiCoverage = wifiCoverage
		t, err := synth.Generate(spec, days)
		if err != nil {
			return nil, nil, err
		}
		if history == nil {
			history, err = synth.GenerateHistory(spec, 14)
			if err != nil {
				return nil, nil, err
			}
		}
		return t, history, nil
	}
	return nil, nil, fmt.Errorf("no cohort user named %q", gen)
}

func buildPolicy(name string, interval, batchSize int, model *power.Model, wifi *power.WiFiModel, history *trace.Trace, ob *observed) (device.Policy, error) {
	switch name {
	case "baseline":
		return nil, nil // metrics of the baseline itself
	case "netmaster":
		cfg := policy.DefaultNetMasterConfig(model)
		cfg.WiFi = wifi
		cfg.History = history
		cfg.Metrics = ob.reg
		cfg.Tracing = ob.sink
		return policy.NewNetMaster(cfg)
	case "wifi-offload":
		if wifi == nil {
			return nil, fmt.Errorf("policy wifi-offload needs -wifi-model")
		}
		return policy.WiFiOffload{}, nil
	case "oracle":
		return policy.NewOracle(model)
	case "delay":
		return policy.NewDelay(simtime.Duration(interval))
	case "batch":
		return policy.NewBatch(batchSize, 0)
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
