package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The golden files pin netmaster-sim's observable output byte for byte:
// the report tables on stdout and the -metrics-out / -trace-out JSON.
// Everything feeding them is deterministic — seeded synthetic traces,
// seeded fault schedules, sorted-key JSON marshalling — so a diff here
// means behaviour changed, not noise. Regenerate deliberately with
//
//	go test ./cmd/netmaster-sim -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name>, rewriting the
// fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestGoldenTextOutput(t *testing.T) {
	cases := []struct {
		name string
		o    options
	}{
		{"netmaster_text.golden", opts("volunteer3", 5, "netmaster")},
		{"baseline_text.golden", opts("volunteer3", 5, "baseline")},
		{"online_text.golden", opts("volunteer3", 5, "online")},
		{"online_chaos_text.golden", func() options {
			o := opts("volunteer3", 5, "online")
			o.FaultRate = 0.15
			o.FaultSeed = 3
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.o, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, buf.Bytes())
		})
	}
}

func TestGoldenMetricsAndTrace(t *testing.T) {
	cases := []struct {
		name string
		o    options
	}{
		{"online_chaos", func() options {
			o := opts("volunteer3", 5, "online")
			o.FaultRate = 0.15
			o.FaultSeed = 3
			return o
		}()},
		{"netmaster_offline", opts("volunteer3", 5, "netmaster")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			o := tc.o
			o.MetricsOut = filepath.Join(dir, "metrics.json")
			o.TraceOut = filepath.Join(dir, "trace.jsonl")
			o.TraceCap = 256 // bounded fixture; wraps deterministically
			if err := run(o, io.Discard); err != nil {
				t.Fatal(err)
			}
			for suffix, path := range map[string]string{
				"_metrics.json.golden": o.MetricsOut,
				"_trace.jsonl.golden":  o.TraceOut,
			} {
				got, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				checkGolden(t, tc.name+suffix, got)
			}
		})
	}
}

// TestGoldenRunsAreReproducible guards the premise of the golden files:
// two identical invocations produce byte-identical text, metrics and
// trace output within one process.
func TestGoldenRunsAreReproducible(t *testing.T) {
	render := func() (string, string, string) {
		dir := t.TempDir()
		o := opts("volunteer3", 4, "online")
		o.FaultRate = 0.2
		o.FaultSeed = 7
		o.MetricsOut = filepath.Join(dir, "m.json")
		o.TraceOut = filepath.Join(dir, "t.jsonl")
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		m, err := os.ReadFile(o.MetricsOut)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(o.TraceOut)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), string(m), string(tr)
	}
	t1, m1, r1 := render()
	t2, m2, r2 := render()
	if t1 != t2 {
		t.Error("text output not reproducible")
	}
	if m1 != m2 {
		t.Error("metrics JSON not reproducible")
	}
	if r1 != r2 {
		t.Error("trace JSONL not reproducible")
	}
}
