package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/tracing"
)

func opts(gen string, days int, policy string) options {
	return options{
		Gen: gen, Days: days, PolicyName: policy,
		Interval: 30, BatchSize: 4, ModelName: "3g",
		TimelineDay: -1, FaultSeed: 1,
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"baseline", "netmaster", "oracle", "delay", "batch", "online"} {
		if err := run(opts("volunteer3", 5, p), io.Discard); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunPerAppAndTimeline(t *testing.T) {
	o := opts("volunteer3", 4, "netmaster")
	o.ModelName = "lte"
	o.PerApp = true
	o.TimelineDay = 2
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlineWithFaults(t *testing.T) {
	o := opts("volunteer3", 5, "online")
	o.FaultRate = 0.15
	o.FaultSeed = 3
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	o.FaultOutage = "90000:180000"
	o.MaxDeferral = 7200
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts("", 5, "baseline"), io.Discard); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(opts("volunteer3", 5, "wat"), io.Discard); err == nil {
		t.Error("unknown policy accepted")
	}
	o := opts("volunteer3", 5, "baseline")
	o.ModelName = "5g"
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(opts("nobody", 5, "baseline"), io.Discard); err == nil {
		t.Error("unknown user accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.FaultOutage = "bogus"
	if err := run(o, io.Discard); err == nil {
		t.Error("malformed outage accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.FaultOutage = "500:100"
	if err := run(o, io.Discard); err == nil {
		t.Error("inverted outage accepted")
	}
}

// -obs-dir writes the per-device layout netmaster-analyze consumes; the
// run's byte-identical metrics and trace also land there.
func TestRunObsDir(t *testing.T) {
	dir := t.TempDir()
	o := opts("volunteer3", 4, "online")
	o.ObsDir = dir
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "volunteer3", "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := tracing.ReadJSONLWithHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Format == 0 || hdr.Events != len(events) || len(events) == 0 {
		t.Fatalf("header %+v with %d events", hdr, len(events))
	}
	if _, err := os.Stat(filepath.Join(dir, "volunteer3", "metrics.json")); err != nil {
		t.Fatal(err)
	}
}
