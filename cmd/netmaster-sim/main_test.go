package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/tracing"
)

func opts(gen string, days int, policy string) options {
	return options{
		gen: gen, days: days, policyName: policy,
		interval: 30, batchSize: 4, modelName: "3g",
		timelineDay: -1, faultSeed: 1,
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"baseline", "netmaster", "oracle", "delay", "batch", "online"} {
		if err := run(opts("volunteer3", 5, p), io.Discard); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunPerAppAndTimeline(t *testing.T) {
	o := opts("volunteer3", 4, "netmaster")
	o.modelName = "lte"
	o.perApp = true
	o.timelineDay = 2
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlineWithFaults(t *testing.T) {
	o := opts("volunteer3", 5, "online")
	o.faultRate = 0.15
	o.faultSeed = 3
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	o.faultOutage = "90000:180000"
	o.maxDeferral = 7200
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts("", 5, "baseline"), io.Discard); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(opts("volunteer3", 5, "wat"), io.Discard); err == nil {
		t.Error("unknown policy accepted")
	}
	o := opts("volunteer3", 5, "baseline")
	o.modelName = "5g"
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(opts("nobody", 5, "baseline"), io.Discard); err == nil {
		t.Error("unknown user accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.faultOutage = "bogus"
	if err := run(o, io.Discard); err == nil {
		t.Error("malformed outage accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.faultOutage = "500:100"
	if err := run(o, io.Discard); err == nil {
		t.Error("inverted outage accepted")
	}
}

// -obs-dir writes the per-device layout netmaster-analyze consumes; the
// run's byte-identical metrics and trace also land there.
func TestRunObsDir(t *testing.T) {
	dir := t.TempDir()
	o := opts("volunteer3", 4, "online")
	o.obsDir = dir
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "volunteer3", "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := tracing.ReadJSONLWithHeader(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Format == 0 || hdr.Events != len(events) || len(events) == 0 {
		t.Fatalf("header %+v with %d events", hdr, len(events))
	}
	if _, err := os.Stat(filepath.Join(dir, "volunteer3", "metrics.json")); err != nil {
		t.Fatal(err)
	}
}
