package main

import "testing"

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"baseline", "netmaster", "oracle", "delay", "batch"} {
		if err := run("", "volunteer3", 5, p, 30, 4, "3g", "", false, -1); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunPerAppAndTimeline(t *testing.T) {
	if err := run("", "volunteer3", 4, "netmaster", 30, 4, "lte", "", true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 5, "baseline", 30, 4, "3g", "", false, -1); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("", "volunteer3", 5, "wat", 30, 4, "3g", "", false, -1); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run("", "volunteer3", 5, "baseline", 30, 4, "5g", "", false, -1); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("", "nobody", 5, "baseline", 30, 4, "3g", "", false, -1); err == nil {
		t.Error("unknown user accepted")
	}
}
