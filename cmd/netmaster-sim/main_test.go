package main

import (
	"io"
	"testing"
)

func opts(gen string, days int, policy string) options {
	return options{
		gen: gen, days: days, policyName: policy,
		interval: 30, batchSize: 4, modelName: "3g",
		timelineDay: -1, faultSeed: 1,
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, p := range []string{"baseline", "netmaster", "oracle", "delay", "batch", "online"} {
		if err := run(opts("volunteer3", 5, p), io.Discard); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestRunPerAppAndTimeline(t *testing.T) {
	o := opts("volunteer3", 4, "netmaster")
	o.modelName = "lte"
	o.perApp = true
	o.timelineDay = 2
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlineWithFaults(t *testing.T) {
	o := opts("volunteer3", 5, "online")
	o.faultRate = 0.15
	o.faultSeed = 3
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	o.faultOutage = "90000:180000"
	o.maxDeferral = 7200
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts("", 5, "baseline"), io.Discard); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(opts("volunteer3", 5, "wat"), io.Discard); err == nil {
		t.Error("unknown policy accepted")
	}
	o := opts("volunteer3", 5, "baseline")
	o.modelName = "5g"
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(opts("nobody", 5, "baseline"), io.Discard); err == nil {
		t.Error("unknown user accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.faultOutage = "bogus"
	if err := run(o, io.Discard); err == nil {
		t.Error("malformed outage accepted")
	}
	o = opts("volunteer3", 5, "online")
	o.faultOutage = "500:100"
	if err := run(o, io.Discard); err == nil {
		t.Error("inverted outage accepted")
	}
}
