// Command netmaster-serve runs the NetMaster pipelines as a
// long-running HTTP/JSON daemon: habit mining, scheduling, policy
// simulation and fleet telemetry behind one API.
//
// Usage:
//
//	netmaster-serve [-addr 127.0.0.1:8080] [-max-in-flight 64]
//	                [-cache-size 128] [-request-timeout 30]
//	                [-shutdown-grace 5] [-parallelism N] [-quiet]
//	                [-state-dir DIR] [-compact-every 256]
//	                [-slow-request MS] [-trace-ring N]
//	                [-slo-p99 2000] [-slo-error-rate 0.01] [-slo-window N]
//	netmaster-serve -router -backends URL,URL[,...] [-vnodes 128] [...]
//
// With -router the process serves no pipelines itself: it proxies
// /v1/* across the -backends shards by device ID on a consistent-hash
// ring, fanning fleet-wide reads out to every shard and merging them so
// a routed /v1/fleet/report is byte-identical to a single-node run.
//
// With -state-dir, every acknowledged /v1/fleet/ingest and
// /v1/profile/update is journaled (fsynced) before the response, the
// journal is periodically compacted into a snapshot, and a restart
// recovers the fleet and persisted profiles from the directory. An
// unwritable journal degrades the daemon to read-only (typed 503 on
// mutating endpoints) instead of dropping acknowledged state.
//
// Endpoints (see docs/api.md for request/response bodies):
//
//	POST /v1/mine          trace → habit profile (LRU-cached by content hash)
//	POST /v1/schedule      activities + profile → packing
//	POST /v1/simulate      trace + policy → metrics vs baseline
//	POST /v1/fleet/ingest  one device's metrics + decision trace
//	GET  /v1/fleet/report  live fleet aggregate + analysis roll-up
//	GET  /metrics          Prometheus text exposition (server + fleet)
//	GET  /healthz          liveness + fleet size + in-flight + SLO burn
//	GET  /debug/requests   recent + slowest request spans (JSON)
//	GET  /debug/pprof/     runtime profiles
//
// SIGTERM/SIGINT drains in-flight requests within -shutdown-grace and
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netmaster/internal/cliconfig"
	"netmaster/internal/metrics"
	"netmaster/internal/parallel"
	"netmaster/internal/server"
	"netmaster/internal/slo"
)

// sloConfig maps the shared CLI observability flags onto the SLO
// tracker config used by both the daemon and the router.
func sloConfig(o cliconfig.Serve) slo.Config {
	return slo.Config{
		TargetP99MS:     o.SLOP99Millis,
		TargetErrorRate: o.SLOErrorRate,
		Window:          o.SLOWindow,
	}
}

func main() {
	o := cliconfig.DefaultServe()
	o.Register(flag.CommandLine)
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-serve:", err)
		os.Exit(1)
	}
}

func run(o cliconfig.Serve) error {
	if o.Parallelism > 0 {
		parallel.SetDefaultWorkers(o.Parallelism)
	}
	if o.Router {
		return runRouter(o)
	}
	cfg := server.Config{
		Addr:           o.Addr,
		MaxInFlight:    o.MaxInFlight,
		CacheSize:      o.CacheSize,
		RequestTimeout: time.Duration(o.RequestTimeoutSecs) * time.Second,
		ShutdownGrace:  time.Duration(o.ShutdownGraceSecs) * time.Second,
		Parallelism:    o.Parallelism,
		Metrics:        metrics.NewRegistry(),
		StateDir:       o.StateDir,
		CompactEvery:   o.CompactEvery,
		SlowRequest:    time.Duration(o.SlowRequestMillis) * time.Millisecond,
		TraceRing:      o.TraceRing,
		SLO:            sloConfig(o),
	}
	if !o.Quiet {
		cfg.LogWriter = os.Stderr
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "netmaster-serve: listening on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "netmaster-serve: draining")
	return srv.Shutdown(context.Background())
}

func runRouter(o cliconfig.Serve) error {
	cfg := server.DefaultRouterConfig()
	cfg.Addr = o.Addr
	cfg.Backends = o.BackendList()
	cfg.VNodes = o.VNodes
	cfg.MaxInFlight = o.MaxInFlight
	cfg.RequestTimeout = time.Duration(o.RequestTimeoutSecs) * time.Second
	cfg.ShutdownGrace = time.Duration(o.ShutdownGraceSecs) * time.Second
	cfg.Parallelism = o.Parallelism
	cfg.Metrics = metrics.NewRegistry()
	cfg.SlowRequest = time.Duration(o.SlowRequestMillis) * time.Millisecond
	cfg.TraceRing = o.TraceRing
	cfg.SLO = sloConfig(o)
	if !o.Quiet {
		cfg.LogWriter = os.Stderr
	}
	rt, err := server.NewRouter(cfg)
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "netmaster-serve: routing %d shards on http://%s\n",
		len(cfg.Backends), rt.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "netmaster-serve: draining")
	return rt.Shutdown(context.Background())
}
