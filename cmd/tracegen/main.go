// Command tracegen generates synthetic smartphone usage traces from the
// built-in cohorts and writes them in the line-oriented trace format.
//
// Usage:
//
//	tracegen -cohort motivation|eval [-days N] [-out DIR] [-user ID]
//	tracegen -stats -cohort motivation   # print per-trace statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netmaster/internal/stats"
	"netmaster/internal/synth"
	"netmaster/internal/trace"
)

func main() {
	var (
		cohort    = flag.String("cohort", "motivation", "cohort to generate: motivation or eval")
		specFile  = flag.String("spec", "", "generate from a JSON cohort spec file instead of a built-in cohort")
		emitSpec  = flag.String("emit-spec", "", "write the selected built-in cohort's spec JSON to this file and exit")
		days      = flag.Int("days", 21, "trace length in days")
		outDir    = flag.String("out", ".", "output directory for trace files")
		user      = flag.String("user", "", "generate only this user ID")
		statsOnly = flag.Bool("stats", false, "print statistics instead of writing files")
	)
	flag.Parse()
	if err := run(*cohort, *specFile, *emitSpec, *days, *outDir, *user, *statsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(cohort, specFile, emitSpec string, days int, outDir, user string, statsOnly bool) error {
	var specs []synth.UserSpec
	if specFile != "" {
		var err error
		specs, err = synth.ReadSpecsFile(specFile)
		if err != nil {
			return err
		}
	} else {
		switch cohort {
		case "motivation":
			specs = synth.MotivationCohort()
		case "eval":
			specs = synth.EvalCohort()
		default:
			return fmt.Errorf("unknown cohort %q (want motivation or eval)", cohort)
		}
	}
	if emitSpec != "" {
		if err := synth.WriteSpecsFile(emitSpec, specs); err != nil {
			return err
		}
		fmt.Printf("wrote %d user specs to %s\n", len(specs), emitSpec)
		return nil
	}
	if user != "" {
		var filtered []synth.UserSpec
		for _, s := range specs {
			if s.ID == user {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no user %q in cohort %q", user, cohort)
		}
		specs = filtered
	}

	for _, spec := range specs {
		t, err := synth.Generate(spec, days)
		if err != nil {
			return err
		}
		if statsOnly {
			printStats(t)
			continue
		}
		path := filepath.Join(outDir, fmt.Sprintf("%s.trace", t.UserID))
		if err := trace.WriteFile(path, t); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d days, %d sessions, %d activities, %d interactions\n",
			path, t.Days, len(t.Sessions), len(t.Activities), len(t.Interactions))
	}
	return nil
}

func printStats(t *trace.Trace) {
	on, off := t.SplitByScreen()
	down, up := t.TotalBytes()
	rates := make([]float64, 0, len(off))
	for _, a := range off {
		rates = append(rates, a.RateBps()/1024)
	}
	fmt.Printf("%s: days=%d sessions=%d interactions=%d activities=%d (on=%d off=%d)\n",
		t.UserID, t.Days, len(t.Sessions), len(t.Interactions), len(t.Activities), len(on), len(off))
	fmt.Printf("  volume: down=%.1fMB up=%.1fMB; screen-off rate %s kB/s\n",
		float64(down)/(1<<20), float64(up)/(1<<20), stats.Summarize(rates))
}
