// Command tracegen generates synthetic smartphone usage traces from the
// built-in cohorts and writes them in the line-oriented trace format.
//
// Usage:
//
//	tracegen -cohort motivation|eval [-days N] [-out DIR] [-user ID]
//	tracegen -stats -cohort motivation   # print per-trace statistics only
//	tracegen -cohort eval -wifi-coverage 0.6   # overlay Wi-Fi coverage
//
// With -wifi-coverage the generated traces carry seeded Wi-Fi
// availability windows covering that fraction of each day; the demand
// side is byte-identical to a coverage-0 run. -stats with -wifi-model
// additionally prices the screen-off volume on the NIC.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netmaster/internal/cliconfig"
	"netmaster/internal/power"
	"netmaster/internal/stats"
	"netmaster/internal/synth"
	"netmaster/internal/trace"
)

func main() {
	o := cliconfig.DefaultTracegen()
	o.Register(flag.CommandLine)
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(o cliconfig.Tracegen) error {
	wifi, err := o.WiFi.Resolve()
	if err != nil {
		return err
	}
	var specs []synth.UserSpec
	if o.SpecFile != "" {
		specs, err = synth.ReadSpecsFile(o.SpecFile)
		if err != nil {
			return err
		}
	} else {
		switch o.Cohort {
		case "motivation":
			specs = synth.MotivationCohort()
		case "eval":
			specs = synth.EvalCohort()
		default:
			return fmt.Errorf("unknown cohort %q (want motivation or eval)", o.Cohort)
		}
	}
	if o.EmitSpec != "" {
		if err := synth.WriteSpecsFile(o.EmitSpec, specs); err != nil {
			return err
		}
		fmt.Printf("wrote %d user specs to %s\n", len(specs), o.EmitSpec)
		return nil
	}
	if o.User != "" {
		var filtered []synth.UserSpec
		for _, s := range specs {
			if s.ID == o.User {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no user %q in cohort %q", o.User, o.Cohort)
		}
		specs = filtered
	}

	for _, spec := range specs {
		if o.WiFiCoverage > 0 {
			spec.WiFiCoverage = o.WiFiCoverage
		}
		t, err := synth.Generate(spec, o.Days)
		if err != nil {
			return err
		}
		if o.StatsOnly {
			printStats(t, wifi)
			continue
		}
		path := filepath.Join(o.OutDir, fmt.Sprintf("%s.trace", t.UserID))
		if err := trace.WriteFile(path, t); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d days, %d sessions, %d activities, %d interactions\n",
			path, t.Days, len(t.Sessions), len(t.Activities), len(t.Interactions))
	}
	return nil
}

func printStats(t *trace.Trace, wifi *power.WiFiModel) {
	on, off := t.SplitByScreen()
	down, up := t.TotalBytes()
	rates := make([]float64, 0, len(off))
	for _, a := range off {
		rates = append(rates, a.RateBps()/1024)
	}
	fmt.Printf("%s: days=%d sessions=%d interactions=%d activities=%d (on=%d off=%d)\n",
		t.UserID, t.Days, len(t.Sessions), len(t.Interactions), len(t.Activities), len(on), len(off))
	fmt.Printf("  volume: down=%.1fMB up=%.1fMB; screen-off rate %s kB/s\n",
		float64(down)/(1<<20), float64(up)/(1<<20), stats.Summarize(rates))
	if len(t.WiFi) > 0 {
		fmt.Printf("  wifi: coverage %.1f%% of the trace (%d windows)\n",
			100*t.WiFiCoverageFraction(), len(t.WiFi))
		if wifi != nil {
			// An upper bound on what offload can touch: the whole
			// screen-off volume pooled onto the NIC at batch rate.
			var bytes int64
			for _, a := range off {
				bytes += a.Bytes()
			}
			fmt.Printf("  wifi: screen-off volume prices at %.1f J on %s (pooled, excl. association)\n",
				wifi.MarginalBurstEnergy(float64(bytes)/wifi.BatchBps), wifi.Name)
		}
	}
}
