package main

import (
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/cliconfig"
	"netmaster/internal/trace"
)

// opts builds a Tracegen option set over the defaults.
func opts(mut func(*cliconfig.Tracegen)) cliconfig.Tracegen {
	o := cliconfig.DefaultTracegen()
	mut(&o)
	return o
}

func TestRunGeneratesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir, o.User = "eval", 3, dir, "volunteer2"
	}))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(filepath.Join(dir, "volunteer2.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.UserID != "volunteer2" || tr.Days != 3 {
		t.Errorf("trace = %s/%d days", tr.UserID, tr.Days)
	}
}

// TestRunWiFiCoverageRoundtrips: -wifi-coverage overlays availability
// windows that survive the trace file round trip, without disturbing
// the demand side.
func TestRunWiFiCoverageRoundtrips(t *testing.T) {
	dir := t.TempDir()
	gen := func(cov float64) *trace.Trace {
		err := run(opts(func(o *cliconfig.Tracegen) {
			o.Cohort, o.Days, o.OutDir, o.User = "eval", 3, dir, "volunteer2"
			o.WiFiCoverage = cov
		}))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadFile(filepath.Join(dir, "volunteer2.trace"))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain := gen(0)
	covered := gen(0.5)
	if len(plain.WiFi) != 0 {
		t.Errorf("coverage 0 wrote %d wifi windows", len(plain.WiFi))
	}
	if len(covered.WiFi) == 0 {
		t.Error("coverage 0.5 wrote no wifi windows")
	}
	if got := covered.WiFiCoverageFraction(); got < 0.3 || got > 0.7 {
		t.Errorf("realised coverage %.2f far from requested 0.5", got)
	}
	if len(covered.Activities) != len(plain.Activities) || len(covered.Sessions) != len(plain.Sessions) {
		t.Error("coverage overlay disturbed the demand side of the trace")
	}
}

func TestRunStatsOnlyWritesNothing(t *testing.T) {
	dir := t.TempDir()
	err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir, o.StatsOnly = "motivation", 2, dir, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stats mode wrote %d files", len(entries))
	}
}

func TestRunSpecRoundtrip(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "cohort.json")
	err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir, o.EmitSpec = "eval", 3, dir, specPath
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = run(opts(func(o *cliconfig.Tracegen) {
		o.SpecFile, o.Days, o.OutDir, o.User = specPath, 2, dir, "volunteer1"
		o.Cohort = ""
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "volunteer1.trace")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir = "bogus", 3, t.TempDir()
	})); err == nil {
		t.Error("unknown cohort accepted")
	}
	if err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir, o.User = "eval", 3, t.TempDir(), "nobody"
	})); err == nil {
		t.Error("unknown user accepted")
	}
	if err := run(opts(func(o *cliconfig.Tracegen) {
		o.SpecFile, o.Days, o.OutDir = "/does/not/exist.json", 3, t.TempDir()
		o.Cohort = ""
	})); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir = "eval", 3, t.TempDir()
		o.WiFiModelName = "warp"
	})); err == nil {
		t.Error("unknown wifi model accepted")
	}
	if err := run(opts(func(o *cliconfig.Tracegen) {
		o.Cohort, o.Days, o.OutDir = "eval", 3, t.TempDir()
		o.WiFiCoverage = 1.5
	})); err == nil {
		t.Error("out-of-range wifi coverage accepted")
	}
}
