package main

import (
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/trace"
)

func TestRunGeneratesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("eval", "", "", 3, dir, "volunteer2", false); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadFile(filepath.Join(dir, "volunteer2.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.UserID != "volunteer2" || tr.Days != 3 {
		t.Errorf("trace = %s/%d days", tr.UserID, tr.Days)
	}
}

func TestRunStatsOnlyWritesNothing(t *testing.T) {
	dir := t.TempDir()
	if err := run("motivation", "", "", 2, dir, "", true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("stats mode wrote %d files", len(entries))
	}
}

func TestRunSpecRoundtrip(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "cohort.json")
	if err := run("eval", "", specPath, 3, dir, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("", specPath, "", 2, dir, "volunteer1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "volunteer1.trace")); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", "", 3, t.TempDir(), "", false); err == nil {
		t.Error("unknown cohort accepted")
	}
	if err := run("eval", "", "", 3, t.TempDir(), "nobody", false); err == nil {
		t.Error("unknown user accepted")
	}
	if err := run("", "/does/not/exist.json", "", 3, t.TempDir(), "", false); err == nil {
		t.Error("missing spec file accepted")
	}
}
