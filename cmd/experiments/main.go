// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic cohorts: the motivation study (Figs. 1–5),
// the live comparison (Fig. 7), the delay/batch sweeps (Figs. 8–9), the
// parameter analysis (Fig. 10) and the user-experience accounting
// (Section VI-B).
//
// Usage:
//
//	experiments [-figure all|1a|1b|2|3|4|5|7|8|9|10a|10b|10c|ux|wifi|motivation]
//	            [-days N] [-model 3g|lte] [-seed N] [-parallelism N]
//	            [-wifi-model wifi] [-wifi-coverage F]
//
// Figure "wifi" sweeps energy savings against Wi-Fi coverage fraction:
// at each point the cohort's traces are regenerated with that much
// seeded AP visibility (demand identical across points) and replayed
// under the wifi-offload-only baseline, cellular-only NetMaster and
// dual-radio NetMaster. -wifi-coverage narrows the sweep to {0, F}.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netmaster/internal/atomicfile"
	"netmaster/internal/cliconfig"
	"netmaster/internal/device"
	"netmaster/internal/eval"
	"netmaster/internal/habit"
	"netmaster/internal/metrics"
	"netmaster/internal/middleware"
	"netmaster/internal/parallel"
	"netmaster/internal/policy"
	"netmaster/internal/power"
	"netmaster/internal/report"
	"netmaster/internal/simtime"
	"netmaster/internal/synth"
	"netmaster/internal/trace"
	"netmaster/internal/tracing"
)

func main() {
	o := cliconfig.DefaultExperiments()
	o.Register(flag.CommandLine)
	flag.Parse()
	parallel.SetDefaultWorkers(o.Parallelism)
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(o cliconfig.Experiments) error {
	figure, days, csvDir, obsDir := o.Figure, o.Days, o.CSVDir, o.ObsDir
	model, err := cliconfig.ResolveModel(o.ModelName)
	if err != nil {
		return err
	}
	wifi, err := o.WiFi.Resolve()
	if err != nil {
		return err
	}

	motivation, err := synth.GenerateCohort(synth.MotivationCohort(), days)
	if err != nil {
		return err
	}
	volunteers, err := synth.GenerateCohort(synth.EvalCohort(), days)
	if err != nil {
		return err
	}
	histories, err := synth.EvalHistories(14)
	if err != nil {
		return err
	}

	all := figure == "all"
	w := os.Stdout

	if all || figure == "motivation" {
		if err := printMotivation(w, motivation); err != nil {
			return err
		}
	}
	if all || figure == "1a" {
		if err := printFig1a(w, motivation); err != nil {
			return err
		}
	}
	if all || figure == "1b" {
		if err := printFig1b(w, motivation); err != nil {
			return err
		}
	}
	if all || figure == "2" {
		if err := printFig2(w, motivation); err != nil {
			return err
		}
	}
	if all || figure == "3" {
		if err := printFig3(w, motivation); err != nil {
			return err
		}
	}
	if all || figure == "4" {
		if err := printFig4(w, motivation[3]); err != nil {
			return err
		}
	}
	if all || figure == "5" {
		if err := printFig5(w, motivation[2]); err != nil {
			return err
		}
	}
	if all || figure == "7" {
		if err := printFig7(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "8" {
		if err := printFig8(w, volunteers, model); err != nil {
			return err
		}
	}
	if all || figure == "9" {
		if err := printFig9(w, volunteers, model); err != nil {
			return err
		}
	}
	if all || figure == "10a" {
		if err := printFig10a(w); err != nil {
			return err
		}
	}
	if all || figure == "10b" {
		if err := printFig10b(w); err != nil {
			return err
		}
	}
	if all || figure == "10c" {
		if err := printFig10c(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "gap" {
		if err := printGapDist(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "drift" {
		if err := printDrift(w, model); err != nil {
			return err
		}
	}
	if all || figure == "sensitivity" {
		if err := printSensitivity(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "battery" {
		if err := printBattery(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "delta" {
		if err := printDeltaRisk(w, volunteers); err != nil {
			return err
		}
	}
	if all || figure == "models" {
		if err := printCrossModel(w, volunteers, histories); err != nil {
			return err
		}
	}
	if all || figure == "hidden" {
		if err := printHiddenImpact(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "ux" {
		if err := printUX(w, volunteers, histories, model); err != nil {
			return err
		}
	}
	if all || figure == "wifi" {
		if err := printWiFi(w, days, model, wifi, o.WiFiCoverage); err != nil {
			return err
		}
	}
	if csvDir != "" {
		if err := writeCSVs(csvDir, volunteers, histories, model, wifi, days); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nCSV series written to %s\n", csvDir)
	}
	if obsDir != "" {
		if err := writeObservability(obsDir, volunteers, model); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nobservability cohort written to %s (analyse with netmaster-analyze)\n", obsDir)
	}
	return nil
}

// writeObservability replays every volunteer through the online
// middleware — the deployment path — with a private registry and trace
// sink each, and writes the per-device exports in the cohort layout
// netmaster-analyze consumes: <dir>/<user>/metrics.json + trace.jsonl.
// Devices replay in parallel on the default worker pool; each file is
// written atomically.
func writeObservability(dir string, volunteers []*trace.Trace, model *power.Model) error {
	return parallel.ForEach(len(volunteers), func(i int) error {
		t := volunteers[i]
		reg := metrics.NewRegistry()
		sink := tracing.NewSink(0)
		cfg := middleware.DefaultReplayConfig(model)
		cfg.Service.Metrics = reg
		cfg.Service.Tracing = sink
		if _, err := middleware.Replay(t, cfg); err != nil {
			return fmt.Errorf("%s: %w", t.UserID, err)
		}
		ddir := filepath.Join(dir, t.UserID)
		if err := os.MkdirAll(ddir, 0o755); err != nil {
			return err
		}
		if err := atomicfile.WriteFile(filepath.Join(ddir, "metrics.json"), reg.WriteJSON); err != nil {
			return err
		}
		return atomicfile.WriteFile(filepath.Join(ddir, "trace.jsonl"), sink.WriteJSONL)
	})
}

// writeCSVs exports the evaluation figures' data series as CSV files.
// The wifi sweep series is included whenever a NIC model is configured.
func writeCSVs(dir string, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model, wifi *power.WiFiModel, days int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, t *report.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.RenderCSV(f); err != nil {
			return err
		}
		return f.Close()
	}

	cfg := eval.DefaultFig7Config(model)
	cfg.Histories = histories
	fig7, err := eval.Fig7(volunteers, cfg)
	if err != nil {
		return err
	}
	t7 := report.NewTable("", "volunteer", "oracle_saving", "netmaster_saving",
		"delay10_saving", "delay20_saving", "delay60_saving",
		"radio_on_netmaster", "down_avg_x", "up_avg_x", "down_peak_x", "up_peak_x")
	for _, r := range fig7 {
		t7.AddRow(r.UserID, r.OracleSaving, r.NetMasterSaving,
			r.DelaySaving[10*simtime.Second], r.DelaySaving[20*simtime.Second], r.DelaySaving[60*simtime.Second],
			r.RadioOnNetMaster, r.DownAvgIncrease, r.UpAvgIncrease, r.DownPeakIncrease, r.UpPeakIncrease)
	}
	if err := save("fig7.csv", t7); err != nil {
		return err
	}

	fig8, err := eval.Fig8(volunteers, model, eval.DefaultDelaySweep())
	if err != nil {
		return err
	}
	t8 := report.NewTable("", "delay_s", "energy_saving", "radio_on_saving", "bw_increase", "affected")
	for _, r := range fig8 {
		t8.AddRow(int64(r.Delay), r.EnergySaving, r.RadioOnSaving, r.BandwidthIncrease, r.AffectedShare)
	}
	if err := save("fig8.csv", t8); err != nil {
		return err
	}

	fig9, err := eval.Fig9(volunteers, model, eval.DefaultBatchSweep())
	if err != nil {
		return err
	}
	t9 := report.NewTable("", "max_batch", "energy_saving", "radio_on_saving", "bw_increase", "affected")
	for _, r := range fig9 {
		t9.AddRow(r.MaxBatch, r.EnergySaving, r.RadioOnSaving, r.BandwidthIncrease, r.AffectedShare)
	}
	if err := save("fig9.csv", t9); err != nil {
		return err
	}

	nmCfg := policy.DefaultNetMasterConfig(model)
	fig10c, err := eval.Fig10c(volunteers, nmCfg, histories, model, eval.DefaultDeltaSweep())
	if err != nil {
		return err
	}
	t10 := report.NewTable("", "delta", "accuracy", "sched_saving_vs_oracle")
	for _, r := range fig10c {
		t10.AddRow(r.Delta, r.Accuracy, r.EnergySaving)
	}
	if err := save("fig10c.csv", t10); err != nil {
		return err
	}

	dist, err := eval.Fig7aGapDistribution(volunteers, cfg, 100)
	if err != nil {
		return err
	}
	tg := report.NewTable("", "test_index", "gap")
	for i, g := range dist.Gaps {
		tg.AddRow(i, g)
	}
	if err := save("fig7a_gaps.csv", tg); err != nil {
		return err
	}

	if wifi == nil {
		return nil
	}
	sweep, err := eval.WiFiSweep(synth.EvalCohort(), days, model, wifi, eval.DefaultWiFiCoverageSweep())
	if err != nil {
		return err
	}
	tw := report.NewTable("", "coverage", "measured", "offload_saving", "cell_netmaster_saving", "dual_saving", "dual_wifi_j")
	for _, r := range sweep {
		tw.AddRow(r.Coverage, r.MeasuredCoverage, r.OffloadSaving, r.CellNetMasterSaving, r.DualSaving, r.DualWiFiEnergyJ)
	}
	return save("wifi.csv", tw)
}

func printMotivation(w *os.File, cohort []*trace.Trace) error {
	m := eval.Motivation(cohort)
	t := report.NewTable("Section III motivation summary (paper targets in parentheses)",
		"metric", "measured", "paper")
	t.AddRow("screen-off activity share", report.Percent(m.ScreenOffActivityShare), "40.98%")
	t.AddRow("screen-on radio utilization", report.Percent(m.ScreenOnUtilization), "45.14%")
	t.AddRow("screen-off P90 rate (kB/s)", m.OffP90RateKBps, "<1")
	t.AddRow("screen-on P90 rate (kB/s)", m.OnP90RateKBps, "<5")
	t.AddRow("cross-user Pearson", m.CrossUserPearson, "0.1353")
	t.AddRow("intra-user Pearson mean", m.IntraUserPearsonMean, "0.54")
	t.AddRow("short-gap (<100s) session share", report.Percent(m.ShortGapInteractionShare), "~17%")
	return t.Render(w)
}

func printFig1a(w *os.File, cohort []*trace.Trace) error {
	rows, mean := eval.Fig1a(cohort)
	t := report.NewTable(fmt.Sprintf("Fig 1(a) network activity distribution (mean screen-off %.2f%%, paper 40.98%%)", mean*100),
		"user", "screen-on", "screen-off", "off-share")
	for _, r := range rows {
		t.AddRow(r.UserID, r.OnCount, r.OffCount, report.Percent(r.OffFraction()))
	}
	return t.Render(w)
}

func printFig1b(w *os.File, cohort []*trace.Trace) error {
	onCDF, offCDF := eval.Fig1b(cohort)
	fmt.Fprintf(w, "\n== Fig 1(b) transfer-rate CDF ==\n")
	fmt.Fprintf(w, "screen-on:  P50=%.3f P90=%.3f P99=%.3f kB/s (paper: 90%% < 5)\n",
		onCDF.Quantile(0.5), onCDF.Quantile(0.9), onCDF.Quantile(0.99))
	fmt.Fprintf(w, "screen-off: P50=%.3f P90=%.3f P99=%.3f kB/s (paper: 90%% < 1)\n",
		offCDF.Quantile(0.5), offCDF.Quantile(0.9), offCDF.Quantile(0.99))
	xs, ys := onCDF.Points(11)
	if err := report.Series(w, "on-CDF", xs, ys); err != nil {
		return err
	}
	xs, ys = offCDF.Points(11)
	return report.Series(w, "off-CDF", xs, ys)
}

func printFig2(w *os.File, cohort []*trace.Trace) error {
	rows, mean := eval.Fig2(cohort)
	t := report.NewTable(fmt.Sprintf("Fig 2 screen-on utilization (mean %.2f%%, paper 45.14%%)", mean*100),
		"user", "avg session (s)", "utilized (s)", "ratio")
	for _, r := range rows {
		t.AddRow(r.UserID, r.AvgSessionSecs, r.AvgUtilizedSecs, report.Percent(r.Utilization()))
	}
	return t.Render(w)
}

func printFig3(w *os.File, cohort []*trace.Trace) error {
	m, mean := eval.Fig3(cohort)
	labels := make([]string, len(cohort))
	for i, tr := range cohort {
		labels[i] = tr.UserID
	}
	if err := report.Matrix(w, fmt.Sprintf("Fig 3 cross-user Pearson (mean %.4f, paper 0.1353)", mean), labels, m); err != nil {
		return err
	}
	perUser, intraMean := eval.IntraUserPearson(cohort)
	t := report.NewTable(fmt.Sprintf("intra-user Pearson (mean %.4f, paper 0.54)", intraMean), "user", "mean day-to-day Pearson")
	for i, v := range perUser {
		t.AddRow(cohort[i].UserID, v)
	}
	return t.Render(w)
}

func printFig4(w *os.File, t *trace.Trace) error {
	m, mean, err := eval.Fig4(t, 8)
	if err != nil {
		return err
	}
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("d%d", i+1)
	}
	return report.Matrix(w, fmt.Sprintf("Fig 4 day-by-day Pearson for %s (mean %.4f, paper 0.8171)", t.UserID, mean), labels, m)
}

func printFig5(w *os.File, tr *trace.Trace) error {
	rows, err := eval.Fig5(tr, 7)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Fig 5 one-week app pattern for %s (%d network apps of %d installed; paper: 8 of 23)",
		tr.UserID, len(rows), len(tr.InstalledApps)),
		"app", "uses", "peak-hour", "peak-intensity")
	for _, r := range rows {
		peakH, peakV := 0, 0.0
		for h, v := range r.Hourly {
			if v > peakV {
				peakH, peakV = h, v
			}
		}
		t.AddRow(string(r.App), r.Total, peakH, peakV)
	}
	return t.Render(w)
}

func printFig7(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	cfg := eval.DefaultFig7Config(model)
	cfg.Histories = histories
	rows, err := eval.Fig7(volunteers, cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 7(a) radio energy saving vs baseline (paper: NetMaster 77.8% avg, oracle gap <5% in 81.6% of tests)",
		"volunteer", "oracle", "netmaster", "delay10", "delay20", "delay60", "gap-to-oracle")
	var nmSum float64
	for _, r := range rows {
		t.AddRow(r.UserID,
			report.Percent(r.OracleSaving), report.Percent(r.NetMasterSaving),
			report.Percent(r.DelaySaving[10*simtime.Second]),
			report.Percent(r.DelaySaving[20*simtime.Second]),
			report.Percent(r.DelaySaving[60*simtime.Second]),
			report.Percent(r.GapToOracle))
		nmSum += r.NetMasterSaving
	}
	t.AddRow("mean", "", report.Percent(nmSum/float64(len(rows))), "", "", "", "")
	if err := t.Render(w); err != nil {
		return err
	}

	t2 := report.NewTable("Fig 7(b) radio-on time (paper: 75.39% inefficient time removed)",
		"volunteer", "default", "netmaster", "turned-off share")
	for _, r := range rows {
		t2.AddRow(r.UserID, r.RadioOnDefault, r.RadioOnNetMaster, report.Percent(r.RadioOffByNM))
	}
	if err := t2.Render(w); err != nil {
		return err
	}

	t3 := report.NewTable("Fig 7(c) bandwidth utilization increase (paper: 3.84x down avg, 2.63x up avg, peak ~1x)",
		"volunteer", "down-avg", "up-avg", "down-peak", "up-peak")
	for _, r := range rows {
		t3.AddRow(r.UserID,
			fmt.Sprintf("%.2fx", r.DownAvgIncrease), fmt.Sprintf("%.2fx", r.UpAvgIncrease),
			fmt.Sprintf("%.2fx", r.DownPeakIncrease), fmt.Sprintf("%.2fx", r.UpPeakIncrease))
	}
	return t3.Render(w)
}

func printFig8(w *os.File, volunteers []*trace.Trace, model *power.Model) error {
	rows, err := eval.Fig8(volunteers, model, eval.DefaultDelaySweep())
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 8 delay sweep (paper @600s: radio-on -36.7%, bw +33.05%, energy -9.2%, affected >40%)",
		"delay", "energy-saving", "radio-on-saving", "bw-increase", "affected")
	for _, r := range rows {
		t.AddRow(r.Delay.String(), report.Percent(r.EnergySaving), report.Percent(r.RadioOnSaving),
			report.Percent(r.BandwidthIncrease), report.Percent(r.AffectedShare))
	}
	return t.Render(w)
}

func printFig9(w *os.File, volunteers []*trace.Trace, model *power.Model) error {
	rows, err := eval.Fig9(volunteers, model, eval.DefaultBatchSweep())
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 9 batch sweep (paper: radio-on -17.7%, bw +17.6%, plateau past 5)",
		"max-batch", "energy-saving", "radio-on-saving", "bw-increase", "affected")
	for _, r := range rows {
		t.AddRow(r.MaxBatch, report.Percent(r.EnergySaving), report.Percent(r.RadioOnSaving),
			report.Percent(r.BandwidthIncrease), report.Percent(r.AffectedShare))
	}
	return t.Render(w)
}

func printFig10a(w *os.File) error {
	sleeps := []simtime.Duration{5, 10, 20, 30, 120, 360}
	series := eval.Fig10a(sleeps, 5*simtime.Second, 20)
	t := report.NewTable("Fig 10(a) radio-on fraction vs wake-ups (exponential sleep)",
		"sleep", "k=2", "k=6", "k=10", "k=20")
	for _, s := range series {
		t.AddRow(s.SleepSecs.String(), s.Fraction[1], s.Fraction[5], s.Fraction[9], s.Fraction[19])
	}
	return t.Render(w)
}

func printFig10b(w *os.File) error {
	series, err := eval.Fig10b(10*simtime.Second, 30*simtime.Minute, 5*simtime.Second, 42)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 10(b) cumulative wake-ups over 30 min (paper: exponential << fixed)",
		"scheme", "5min", "10min", "20min", "30min")
	for _, s := range series {
		t.AddRow(s.Scheme, s.Minutes[4], s.Minutes[9], s.Minutes[19], s.Minutes[29])
	}
	return t.Render(w)
}

func printFig10c(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	cfg := policy.DefaultNetMasterConfig(model)
	rows, err := eval.Fig10c(volunteers, cfg, histories, model, eval.DefaultDeltaSweep())
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 10(c) prediction threshold sweep (paper: curves cross near 0.37)",
		"delta", "accuracy", "energy-saving/oracle")
	for _, r := range rows {
		t.AddRow(r.Delta, report.Percent(r.Accuracy), report.Percent(r.EnergySaving))
	}
	return t.Render(w)
}

// wifiSweepPoints picks the coverage x-axis: the default sweep, or
// {0, cov} when -wifi-coverage pins a single point of interest (the
// zero point stays so the cellular-only anchor is always visible).
func wifiSweepPoints(cov float64) []float64 {
	if cov > 0 {
		return []float64{0, cov}
	}
	return eval.DefaultWiFiCoverageSweep()
}

func printWiFi(w *os.File, days int, model *power.Model, wifi *power.WiFiModel, cov float64) error {
	if wifi == nil {
		return fmt.Errorf("figure wifi needs -wifi-model (try -wifi-model wifi)")
	}
	rows, err := eval.WiFiSweep(synth.EvalCohort(), days, model, wifi, wifiSweepPoints(cov))
	if err != nil {
		return err
	}
	t := report.NewTable("Wi-Fi coverage sweep: radio energy saving vs the all-cellular baseline (expect dual >= offload-only >= 0)",
		"coverage", "measured", "offload-only", "cell-netmaster", "dual-netmaster", "dual wifi (J)")
	for _, r := range rows {
		t.AddRow(report.Percent(r.Coverage), report.Percent(r.MeasuredCoverage),
			report.Percent(r.OffloadSaving), report.Percent(r.CellNetMasterSaving),
			report.Percent(r.DualSaving), r.DualWiFiEnergyJ)
	}
	return t.Render(w)
}

func printUX(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	cfg := policy.DefaultNetMasterConfig(model)
	rows, err := eval.UserExperience(volunteers, cfg, histories, model)
	if err != nil {
		return err
	}
	t := report.NewTable("Section VI-B user experience (paper: 1 wrong decision in 319, <1%)",
		"volunteer", "interactions", "want-network", "wrong", "rate")
	for _, r := range rows {
		t.AddRow(r.UserID, r.Interactions, r.NetInteractions, r.WrongDecisions, report.Percent(r.Rate()))
	}
	return t.Render(w)
}

func printGapDist(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	cfg := eval.DefaultFig7Config(model)
	cfg.Histories = histories
	dist, err := eval.Fig7aGapDistribution(volunteers, cfg, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Fig 7(a) per-test gap distribution (paper: <5%% in 81.6%% of tests, worst 11.2%%) ==\n")
	fmt.Fprintf(w, "tests=%d  below-5%%=%s  mean=%s  worst=%s\n",
		len(dist.Gaps), report.Percent(dist.ShareBelow5pc), report.Percent(dist.Mean), report.Percent(dist.Worst))
	return nil
}

func printHiddenImpact(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	var policies []device.Policy
	nmCfg := policy.DefaultNetMasterConfig(model)
	if h, ok := histories[volunteers[0].UserID]; ok {
		nmCfg.History = h
	}
	nm, err := policy.NewNetMaster(nmCfg)
	if err != nil {
		return err
	}
	d60, err := policy.NewDelay(60 * simtime.Second)
	if err != nil {
		return err
	}
	d600, err := policy.NewDelay(600 * simtime.Second)
	if err != nil {
		return err
	}
	policies = append(policies, policy.Baseline{}, nm, d60, d600)
	// NetMaster's history is per-user; measure it on its own volunteer
	// only and the stateless policies on the whole cohort.
	rows, err := eval.HiddenImpact(volunteers[:1], model, policies)
	if err != nil {
		return err
	}
	t := report.NewTable("Section VII hidden impact: push delivery latency (seconds)",
		"policy", "pushes", "mean", "p50", "p90", "max", "<=60s")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Pushes, r.DelaySecs.Mean, r.DelaySecs.P50, r.DelaySecs.P90,
			r.DelaySecs.Max, report.Percent(r.WithinMinute))
	}
	return t.Render(w)
}

func printCrossModel(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace) error {
	rows, err := eval.CrossModel(volunteers, histories, []*power.Model{power.Model3G(), power.ModelLTE()})
	if err != nil {
		return err
	}
	t := report.NewTable("cross-model check: the savings follow the tail structure, not one parameter set",
		"model", "baseline J/day", "oracle", "netmaster", "delay-60s")
	for _, r := range rows {
		t.AddRow(r.Model, r.BaselineJPerDay, report.Percent(r.OracleSaving),
			report.Percent(r.NetMasterSaving), report.Percent(r.DelaySaving))
	}
	return t.Render(w)
}

func printDeltaRisk(w *os.File, volunteers []*trace.Trace) error {
	rows, err := eval.DeltaRisk(volunteers, habit.DefaultConfig(), eval.DefaultDeltaSweep())
	if err != nil {
		return err
	}
	t := report.NewTable("impact-based threshold selection (paper picks δ=0.2 weekdays / 0.1 weekends)",
		"delta", "weekday risk", "weekend risk")
	for _, r := range rows {
		t.AddRow(r.Delta, r.WeekdayRisk, r.WeekendRisk)
	}
	return t.Render(w)
}

func printBattery(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	nmCfg := policy.DefaultNetMasterConfig(model)
	if h, ok := histories[volunteers[0].UserID]; ok {
		nmCfg.History = h
	}
	nm, err := policy.NewNetMaster(nmCfg)
	if err != nil {
		return err
	}
	oracle, err := policy.NewOracle(model)
	if err != nil {
		return err
	}
	rows, err := eval.BatteryLife(volunteers[:1], model, eval.DefaultBatteryConfig(), []device.Policy{nm, oracle})
	if err != nil {
		return err
	}
	t := report.NewTable("projected battery life (6.66 Wh battery, screen+idle included)",
		"policy", "device J/day", "radio share", "hours/charge", "extension")
	for _, r := range rows {
		t.AddRow(r.Policy, r.DeviceJPerDay, report.Percent(r.RadioShare),
			r.ProjectedHours, report.Percent(r.ExtensionVsBaseline))
	}
	return t.Render(w)
}

func printSensitivity(w *os.File, volunteers []*trace.Trace, histories map[string]*trace.Trace, model *power.Model) error {
	rows, err := eval.Sensitivity(volunteers[:1], histories, model)
	if err != nil {
		return err
	}
	t := report.NewTable("sensitivity of the headline saving to NetMaster's operational knobs",
		"knob", "setting", "energy-saving", "wake share", "wrong rate")
	for _, r := range rows {
		t.AddRow(r.Knob, r.Setting, report.Percent(r.EnergySaving),
			report.Percent(r.WakeShare), report.Percent(r.WrongRate))
	}
	return t.Render(w)
}

func printDrift(w *os.File, model *power.Model) error {
	rows, err := eval.Drift(eval.DefaultDriftConfig(), model)
	if err != nil {
		return err
	}
	t := report.NewTable("habit drift: the routine rotates 5 h after week 2 (recency mining is the §VII extension)",
		"mining", "energy-saving", "post-drift accuracy", "stale predicted time", "wrong rate")
	for _, r := range rows {
		t.AddRow(r.Strategy, report.Percent(r.EnergySaving), report.Percent(r.Accuracy),
			report.Percent(r.StaleShare), report.Percent(r.WrongRate))
	}
	return t.Render(w)
}
