package main

import (
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/cliconfig"
	"netmaster/internal/tracing"
)

// expOpts builds an Experiments option set over the defaults.
func expOpts(mut func(*cliconfig.Experiments)) cliconfig.Experiments {
	o := cliconfig.DefaultExperiments()
	mut(&o)
	return o
}

func TestRunSingleFigures(t *testing.T) {
	// The cheap figures run end to end; days kept small.
	for _, fig := range []string{"motivation", "1a", "1b", "2", "3", "4", "5", "10a", "10b", "delta"} {
		if err := run(expOpts(func(o *cliconfig.Experiments) {
			o.Figure, o.Days = fig, 8
		})); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
	}
}

// The wifi figure covers the dual-radio sweep; the pinned -wifi-coverage
// path narrows the x-axis to the zero anchor plus the requested point.
func TestRunWiFiFigure(t *testing.T) {
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.WiFiCoverage = "wifi", 6, 0.6
	})); err != nil {
		t.Fatal(err)
	}
}

func TestRunWiFiFigureNeedsModel(t *testing.T) {
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.WiFiModelName = "wifi", 6, ""
	})); err == nil {
		t.Error("figure wifi without a NIC model accepted")
	}
}

func TestRunUnknownModel(t *testing.T) {
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.ModelName = "1a", 8, "6g"
	})); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.WiFiModelName = "1a", 8, "warp"
	})); err == nil {
		t.Error("unknown wifi model accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.CSVDir = "7", 8, dir
	})); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig7.csv", "fig8.csv", "fig9.csv", "fig10c.csv", "fig7a_gaps.csv", "wifi.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s", f)
		}
	}
}

// -obs-dir writes the per-device cohort layout netmaster-analyze
// consumes: every volunteer gets metrics.json and a well-formed
// headered trace.
func TestRunObservabilityExport(t *testing.T) {
	dir := t.TempDir()
	if err := run(expOpts(func(o *cliconfig.Experiments) {
		o.Figure, o.Days, o.ObsDir = "1a", 6, dir
	})); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no device directories written")
	}
	for _, e := range entries {
		if _, err := os.Stat(filepath.Join(dir, e.Name(), "metrics.json")); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		f, err := os.Open(filepath.Join(dir, e.Name(), "trace.jsonl"))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		hdr, events, err := tracing.ReadJSONLWithHeader(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if hdr.Format == 0 || len(events) == 0 || hdr.Events != len(events) {
			t.Errorf("%s: header %+v with %d events", e.Name(), hdr, len(events))
		}
	}
}
