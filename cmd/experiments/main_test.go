package main

import (
	"os"
	"path/filepath"
	"testing"

	"netmaster/internal/tracing"
)

func TestRunSingleFigures(t *testing.T) {
	// The cheap figures run end to end; days kept small.
	for _, fig := range []string{"motivation", "1a", "1b", "2", "3", "4", "5", "10a", "10b", "delta"} {
		if err := run(fig, 8, "3g", "", ""); err != nil {
			t.Errorf("figure %s: %v", fig, err)
		}
	}
}

func TestRunUnknownModel(t *testing.T) {
	if err := run("1a", 8, "6g", "", ""); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run("7", 8, "3g", dir, ""); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig7.csv", "fig8.csv", "fig9.csv", "fig10c.csv", "fig7a_gaps.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s", f)
		}
	}
}

// -obs-dir writes the per-device cohort layout netmaster-analyze
// consumes: every volunteer gets metrics.json and a well-formed
// headered trace.
func TestRunObservabilityExport(t *testing.T) {
	dir := t.TempDir()
	if err := run("1a", 6, "3g", "", dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no device directories written")
	}
	for _, e := range entries {
		if _, err := os.Stat(filepath.Join(dir, e.Name(), "metrics.json")); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		f, err := os.Open(filepath.Join(dir, e.Name(), "trace.jsonl"))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		hdr, events, err := tracing.ReadJSONLWithHeader(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if hdr.Format == 0 || len(events) == 0 || hdr.Events != len(events) {
			t.Errorf("%s: header %+v with %d events", e.Name(), hdr, len(events))
		}
	}
}
