package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netmaster/internal/atomicfile"
	"netmaster/internal/metrics"
	"netmaster/internal/middleware"
	"netmaster/internal/power"
	"netmaster/internal/synth"
	"netmaster/internal/tracing"
)

// The golden files pin the fleet report byte for byte over a fixed
// 3-device cohort: the same seeded online replays netmaster-sim runs,
// analysed at every parallelism setting. A diff means the analyser's
// behaviour changed, not noise. Regenerate deliberately with
//
//	go test ./cmd/netmaster-analyze -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// writeCohort replays the first three cohort users online and writes
// their observability exports in the layout the analyzer consumes:
// <dir>/<device>/metrics.json + trace.jsonl.
func writeCohort(t *testing.T, dir string) []string {
	t.Helper()
	model := power.Model3G()
	var devices []string
	for _, spec := range synth.EvalCohort()[:3] {
		tr, err := synth.Generate(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		sink := tracing.NewSink(0)
		cfg := middleware.DefaultReplayConfig(model)
		cfg.Service.Metrics = reg
		cfg.Service.Tracing = sink
		if _, err := middleware.Replay(tr, cfg); err != nil {
			t.Fatal(err)
		}
		ddir := filepath.Join(dir, spec.ID)
		if err := os.MkdirAll(ddir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := atomicfile.WriteFile(filepath.Join(ddir, "metrics.json"), reg.WriteJSON); err != nil {
			t.Fatal(err)
		}
		if err := atomicfile.WriteFile(filepath.Join(ddir, "trace.jsonl"), sink.WriteJSONL); err != nil {
			t.Fatal(err)
		}
		devices = append(devices, ddir)
	}
	return devices
}

func render(t *testing.T, o options) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGoldenFleetReport(t *testing.T) {
	dir := t.TempDir()
	writeCohort(t, dir)

	for _, format := range []string{"text", "json"} {
		golden := fmt.Sprintf("fleet_%s.golden", format)
		t.Run(format, func(t *testing.T) {
			seq := render(t, options{Format: format, Parallelism: 1, ModelName: "3g", Dirs: []string{dir}})
			checkGolden(t, golden, []byte(seq))
			// The report must not depend on worker count or repetition.
			for _, par := range []int{8, 1} {
				if got := render(t, options{Format: format, Parallelism: par, ModelName: "3g", Dirs: []string{dir}}); got != seq {
					t.Errorf("parallelism %d changed the %s report", par, format)
				}
			}
		})
	}

	t.Run("prom", func(t *testing.T) {
		promOut := filepath.Join(t.TempDir(), "fleet.prom")
		render(t, options{Format: "text", Parallelism: 1, ModelName: "3g", PromOut: promOut, Dirs: []string{dir}})
		seq, err := os.ReadFile(promOut)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "fleet_prom.golden", seq)
		render(t, options{Format: "text", Parallelism: 8, ModelName: "3g", PromOut: promOut, Dirs: []string{dir}})
		par, err := os.ReadFile(promOut)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq, par) {
			t.Error("parallelism changed the Prometheus exposition")
		}
	})
}

// Passing the device directories individually must produce exactly the
// cohort-directory report.
func TestDeviceArgsEquivalentToCohortDir(t *testing.T) {
	dir := t.TempDir()
	devices := writeCohort(t, dir)
	whole := render(t, options{Format: "text", Parallelism: 1, ModelName: "3g", Dirs: []string{dir}})
	split := render(t, options{Format: "text", Parallelism: 1, ModelName: "3g", Dirs: devices})
	if whole != split {
		t.Error("device-dir arguments diverge from the cohort-dir report")
	}
}

// A clean cohort reports zero invariant errors; a spliced trace is
// caught and counted for -check.
func TestCheckFindsCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	devices := writeCohort(t, dir)

	var buf bytes.Buffer
	errs, err := run(options{Format: "text", Parallelism: 1, ModelName: "3g", Dirs: []string{dir}}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("clean cohort reported %d errors:\n%s", errs, buf.String())
	}

	// Splice: repeat the first event line at the end of one trace. Its
	// sequence number regresses, which the seq-order audit must flag.
	tracePath := filepath.Join(devices[0], "trace.jsonl")
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(b), "\n", 3)
	if len(lines) < 3 {
		t.Fatal("trace too short to splice")
	}
	if err := os.WriteFile(tracePath, append(b, []byte(lines[1]+"\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	errs, err = run(options{Format: "text", Parallelism: 1, ModelName: "3g", Dirs: []string{dir}}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if errs == 0 {
		t.Fatal("spliced trace not flagged")
	}
}

func TestRejectsBadInputs(t *testing.T) {
	if _, err := run(options{Format: "text", ModelName: "3g"}, &bytes.Buffer{}); err == nil {
		t.Error("no input dirs accepted")
	}
	if _, err := run(options{Format: "text", ModelName: "warp"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown model accepted")
	}
	dir := t.TempDir()
	writeCohort(t, dir)
	if _, err := run(options{Format: "yaml", ModelName: "3g", Dirs: []string{dir}}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := run(options{Format: "text", ModelName: "3g", Dirs: []string{t.TempDir()}}, &bytes.Buffer{}); err == nil {
		t.Error("empty dir accepted")
	}
}
