// Command netmaster-analyze merges per-device observability exports —
// the metrics.json / trace.jsonl pairs netmaster-sim and experiments
// write with -obs-dir — into one fleet report: aggregated metrics,
// per-app energy attribution, the habit-profile prediction scorecard,
// deferral-latency distributions, duty-cycle thrash stats, and invariant
// audit findings.
//
// Usage:
//
//	netmaster-analyze [flags] <dir>...
//
// Each argument is either a device directory (containing metrics.json
// and/or trace.jsonl; the directory name is the device ID) or a cohort
// directory whose immediate subdirectories are device directories.
//
//	netmaster-analyze obs/                      # whole cohort, text report
//	netmaster-analyze -format json obs/         # machine-readable report
//	netmaster-analyze -prom-out fleet.prom obs/ # Prometheus text exposition
//	netmaster-analyze -check obs/               # exit 2 on invariant findings
//
// The report is a pure function of the input files: bytes are identical
// across runs and across -parallelism settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"netmaster/internal/atomicfile"
	"netmaster/internal/cliconfig"
	"netmaster/internal/metrics"
	"netmaster/internal/parallel"
	"netmaster/internal/report"
	"netmaster/internal/telemetry"
	"netmaster/internal/telemetry/analyze"
	"netmaster/internal/tracing"
)

const (
	metricsFile = "metrics.json"
	traceFile   = "trace.jsonl"
)

// options is the netmaster-analyze flag set, shared via cliconfig so
// the common flags (-model, -parallelism, -format, output paths) stay
// aligned across binaries.
type options = cliconfig.Analyze

func main() {
	o := cliconfig.DefaultAnalyze()
	o.Register(flag.CommandLine)
	flag.Parse()
	o.Dirs = flag.Args()
	var out io.Writer = os.Stdout
	var buf *strings.Builder
	if o.Out != "" {
		buf = &strings.Builder{}
		out = buf
	}
	errs, err := run(o, out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netmaster-analyze:", err)
		os.Exit(1)
	}
	if buf != nil {
		if err := atomicfile.WriteFileBytes(o.Out, []byte(buf.String())); err != nil {
			fmt.Fprintln(os.Stderr, "netmaster-analyze:", err)
			os.Exit(1)
		}
	}
	if o.Check && errs > 0 {
		fmt.Fprintf(os.Stderr, "netmaster-analyze: %d invariant findings\n", errs)
		os.Exit(2)
	}
}

// fleetDoc is the JSON report: the merged metric registry next to the
// trace analysis.
type fleetDoc struct {
	Metrics  telemetry.FleetSnapshot `json:"metrics"`
	Analysis analyze.FleetReport     `json:"analysis"`
}

// run loads every device, merges, and writes the report. It returns the
// number of error-severity findings (the -check exit condition).
func run(o options, out io.Writer) (int, error) {
	model, err := cliconfig.ResolveModel(o.ModelName)
	if err != nil {
		return 0, err
	}
	if len(o.Dirs) == 0 {
		return 0, fmt.Errorf("no input directories (want device or cohort dirs)")
	}
	devDirs, err := discoverDevices(o.Dirs)
	if err != nil {
		return 0, err
	}

	workers := o.Parallelism
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	acfg := analyze.DefaultConfig()
	acfg.ActivePowerMW = model.ActivePowerMW
	type loaded struct {
		report analyze.DeviceReport
		dev    *telemetry.Device
	}
	devs, err := parallel.MapN(workers, len(devDirs), func(i int) (loaded, error) {
		in, snap, err := loadDevice(devDirs[i])
		if err != nil {
			return loaded{}, err
		}
		l := loaded{report: analyze.Device(in, acfg)}
		if snap != nil {
			l.dev = &telemetry.Device{ID: in.ID, Snapshot: *snap}
		}
		return l, nil
	})
	if err != nil {
		return 0, err
	}

	reports := make([]analyze.DeviceReport, len(devs))
	var mdevs []telemetry.Device
	for i, d := range devs {
		reports[i] = d.report
		if d.dev != nil {
			mdevs = append(mdevs, *d.dev)
		}
	}
	agg, err := telemetry.AggregateParallel(workers, mdevs)
	if err != nil {
		return 0, err
	}
	doc := fleetDoc{Metrics: agg.Export(), Analysis: analyze.Fleet(reports)}

	if o.PromOut != "" {
		err := atomicfile.WriteFile(o.PromOut, func(w io.Writer) error {
			return telemetry.WriteProm(w, "netmaster_", doc.Metrics)
		})
		if err != nil {
			return 0, err
		}
	}

	switch o.Format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return 0, err
		}
	case "text":
		if err := renderText(out, doc); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("unknown format %q (want text or json)", o.Format)
	}
	return doc.Analysis.Errors(), nil
}

// discoverDevices resolves the argument list to device directories. A
// directory holding metrics.json or trace.jsonl is a device; otherwise
// its immediate subdirectories holding either file are. The result is
// sorted and de-duplicated so the report never depends on argument or
// readdir order.
func discoverDevices(args []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("%s: not a directory", arg)
		}
		if isDeviceDir(arg) {
			add(filepath.Clean(arg))
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		found := false
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			sub := filepath.Join(arg, e.Name())
			if isDeviceDir(sub) {
				add(sub)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%s: no device directories (want %s or %s in it or its subdirectories)",
				arg, metricsFile, traceFile)
		}
	}
	sort.Slice(out, func(i, j int) bool { return filepath.Base(out[i]) < filepath.Base(out[j]) })
	return out, nil
}

func isDeviceDir(dir string) bool {
	for _, f := range []string{metricsFile, traceFile} {
		if fi, err := os.Stat(filepath.Join(dir, f)); err == nil && !fi.IsDir() {
			return true
		}
	}
	return false
}

// loadDevice reads one device directory. The trace and the metrics
// snapshot are both optional individually; the device ID is the
// directory name.
func loadDevice(dir string) (analyze.DeviceInput, *metrics.Snapshot, error) {
	in := analyze.DeviceInput{ID: filepath.Base(dir)}
	if f, err := os.Open(filepath.Join(dir, traceFile)); err == nil {
		hdr, events, rerr := tracing.ReadJSONLWithHeader(f)
		f.Close()
		if rerr != nil {
			return in, nil, fmt.Errorf("%s: %w", filepath.Join(dir, traceFile), rerr)
		}
		in.Header = hdr
		in.Events = events
	} else if !os.IsNotExist(err) {
		return in, nil, err
	}
	var snap *metrics.Snapshot
	if b, err := os.ReadFile(filepath.Join(dir, metricsFile)); err == nil {
		snap = &metrics.Snapshot{}
		if uerr := json.Unmarshal(b, snap); uerr != nil {
			return in, nil, fmt.Errorf("%s: %w", filepath.Join(dir, metricsFile), uerr)
		}
		in.Metrics = snap
	} else if !os.IsNotExist(err) {
		return in, nil, err
	}
	return in, snap, nil
}

// renderText writes the human-readable fleet report.
func renderText(w io.Writer, doc fleetDoc) error {
	a := doc.Analysis
	sum := report.NewTable(fmt.Sprintf("fleet report (%d devices: %s)", a.Devices, strings.Join(a.DeviceIDs, ", ")),
		"metric", "value")
	sum.AddRow("trace events", a.Events)
	sum.AddRow("truncated traces", a.Truncated)
	sum.AddRow("radio sessions", a.Thrash.RadioSessions)
	sum.AddRow("thrash pairs", a.Thrash.ThrashPairs)
	sum.AddRow("unproductive wakes", a.Thrash.UnproductiveWakes)
	sum.AddRow("deferred transfers", a.Deferrals.Count)
	sum.AddRow("defer mean (s)", fmt.Sprintf("%.1f", a.Deferrals.MeanSecs))
	sum.AddRow("defer p50/p90/p99 (s)", fmt.Sprintf("%.0f/%.0f/%.0f", a.Deferrals.P50Secs, a.Deferrals.P90Secs, a.Deferrals.P99Secs))
	sum.AddRow("defer max (s)", fmt.Sprintf("%.0f", a.Deferrals.MaxSecs))
	sum.AddRow("audit errors", a.Errors())
	sum.AddRow("audit warnings", len(a.Findings)-a.Errors())
	if err := sum.Render(w); err != nil {
		return err
	}

	apps := report.NewTable("per-app energy attribution", "app", "transfers", "bytes", "active (s)", "energy (J)")
	for i, ap := range a.Apps {
		if i == 12 {
			apps.AddRow(fmt.Sprintf("(+%d more)", len(a.Apps)-i), "", "", "", "")
			break
		}
		apps.AddRow(ap.App, ap.Transfers, ap.Bytes, ap.ActiveSecs, fmt.Sprintf("%.1f", ap.EnergyJ))
	}
	if err := apps.Render(w); err != nil {
		return err
	}

	slots := report.NewTable("prediction scorecard (hours with duty wakes or served transfers)",
		"hour", "wakes", "productive", "precision", "served", "deadline", "foreground")
	for _, s := range a.Slots {
		if s.Wakes == 0 && s.Served == 0 && s.DeadlineFlushes == 0 {
			continue
		}
		slots.AddRow(fmt.Sprintf("%02d", s.Hour), s.Wakes, s.ProductiveWakes,
			report.Percent(s.Precision()), s.Served, s.DeadlineFlushes, s.Foreground)
	}
	if slots.NumRows() > 0 {
		if err := slots.Render(w); err != nil {
			return err
		}
	}

	if len(a.Findings) > 0 {
		fnd := report.NewTable("findings", "device", "severity", "check", "count", "detail")
		for _, f := range a.Findings {
			fnd.AddRow(f.Device, string(f.Severity), f.Check, f.Count, f.Detail)
		}
		if err := fnd.Render(w); err != nil {
			return err
		}
	} else if _, err := fmt.Fprintf(w, "findings: none\n"); err != nil {
		return err
	}
	return nil
}
