package netmaster_test

import (
	"context"
	"fmt"
	"reflect"

	"netmaster"
)

// Usage traces: synthesise one deterministic cohort trace.
func ExampleGenerateTrace() {
	specs := netmaster.EvalCohort()
	tr, err := netmaster.GenerateTrace(specs[0], 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d days, %d installed apps\n", tr.UserID, tr.Days, len(tr.InstalledApps))
	// Output: volunteer1: 7 days, 23 installed apps
}

// Habit mining: turn a trace into per-slot usage probabilities.
func ExampleMineHabits() {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[0], 14)
	if err != nil {
		panic(err)
	}
	p, err := netmaster.MineHabits(tr, netmaster.DefaultHabitConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d weekday days, %d weekend days, slot width %ds\n",
		p.UserID, p.Weekday.Days, p.Weekend.Days, int64(p.SlotWidth))
	// Output: volunteer1: 10 weekday days, 4 weekend days, slot width 3600s
}

// Incremental mining: fold one day at a time into a sketch; the
// materialised profile is identical to a batch mine over the whole
// trace, so a long-lived service absorbs each new day in O(new events).
func ExampleNewHabitSketch() {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[0], 14)
	if err != nil {
		panic(err)
	}
	full, err := netmaster.MineHabits(tr, netmaster.DefaultHabitConfig())
	if err != nil {
		panic(err)
	}
	sk, err := netmaster.NewHabitSketch(tr.UserID, netmaster.DefaultHabitConfig())
	if err != nil {
		panic(err)
	}
	for day := 0; day < tr.Days; day++ {
		if err := sk.FoldTraceDay(tr, day); err != nil {
			panic(err)
		}
	}
	fmt.Printf("folded %d days, identical to batch mine: %t\n",
		sk.Days(), reflect.DeepEqual(full, sk.Profile()))
	// Output: folded 14 days, identical to batch mine: true
}

// Core scheduling: pack screen-off activities into predicted active slots.
func ExampleNewScheduler() {
	model := netmaster.Model3G()
	cfg := netmaster.DefaultSchedulerConfig()
	cfg.SavedEnergy = func(a netmaster.SchedActivity) float64 { return model.SavedEnergy(a.ActiveSecs) }
	cfg.UseProb = func(netmaster.Instant) float64 { return 0.9 }
	s, err := netmaster.NewScheduler(cfg)
	if err != nil {
		panic(err)
	}
	slots := []netmaster.Interval{{
		Start: netmaster.Instant(9 * netmaster.Hour),
		End:   netmaster.Instant(10 * netmaster.Hour),
	}}
	acts := []netmaster.SchedActivity{
		{ID: 1, Time: netmaster.Instant(7 * netmaster.Hour), Bytes: 200_000, ActiveSecs: 5},
		{ID: 2, Time: netmaster.Instant(8 * netmaster.Hour), Bytes: 50_000, ActiveSecs: 2},
	}
	res, err := s.Schedule(slots, acts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d scheduled, %d unscheduled\n", len(res.Assignments), len(res.Unscheduled))
	// Output: 1 scheduled, 1 unscheduled
}

// Policies and replay: compare the paper's middleware to the baseline.
func ExampleCompare() {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[0], 7)
	if err != nil {
		panic(err)
	}
	model := netmaster.Model3G()
	delay, err := netmaster.NewDelay(10 * netmaster.Minute)
	if err != nil {
		panic(err)
	}
	results, err := netmaster.Compare(tr, model, []netmaster.Policy{delay})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s vs %s: saving positive = %t\n",
		results[1].Metrics.PolicyName, results[0].Metrics.PolicyName,
		results[1].EnergySaving > 0)
	// Output: delay-10m vs baseline: saving positive = true
}

// Dual-radio offload: give the spec Wi-Fi coverage, point NetMaster at
// the NIC model and meter both radios. Coverage 0 (or a nil WiFiModel)
// reproduces the cellular-only plan byte for byte.
func ExampleRunRadios() {
	spec := netmaster.EvalCohort()[0]
	spec.WiFiCoverage = 0.6
	tr, err := netmaster.GenerateTrace(spec, 7)
	if err != nil {
		panic(err)
	}
	cell, wifi := netmaster.Model3G(), netmaster.ModelWiFi()
	base, err := netmaster.Run(netmaster.BaselinePolicy{}, tr, cell)
	if err != nil {
		panic(err)
	}
	cfg := netmaster.DefaultNetMasterConfig(cell)
	cfg.WiFi = wifi
	nm, err := netmaster.NewNetMasterPolicy(cfg)
	if err != nil {
		panic(err)
	}
	m, err := netmaster.RunRadios(nm, tr, cell, wifi)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dual-radio beats all-cellular: %t, NIC associated: %t\n",
		m.EnergySavingVs(base) > 0, m.WiFi.Promotions > 0)
	// Output: dual-radio beats all-cellular: true, NIC associated: true
}

// Online middleware: drive the deployment-mode service over a trace.
func ExampleOnlineReplay() {
	tr, err := netmaster.GenerateTrace(netmaster.EvalCohort()[0], 7)
	if err != nil {
		panic(err)
	}
	res, err := netmaster.OnlineReplay(tr, netmaster.DefaultOnlineReplayConfig(netmaster.Model3G()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("policy %s, degraded = %t\n", res.Plan.PolicyName, res.Service.Health().Mode != netmaster.ModeNormal)
	// Output: policy netmaster-online, degraded = false
}

// Observability: nil-tolerant metric handles with deterministic snapshots.
func ExampleNewMetricsRegistry() {
	reg := netmaster.NewMetricsRegistry()
	c := reg.Counter("demo_decisions_total")
	c.Add(3)
	fmt.Println(reg.Snapshot().Counters["demo_decisions_total"])
	// Output: 3
}

// Fleet telemetry: merge per-device snapshots into one aggregate.
func ExampleAggregateFleet() {
	mk := func(n int64) netmaster.MetricsSnapshot {
		reg := netmaster.NewMetricsRegistry()
		reg.Counter("demo_total").Add(n)
		return reg.Snapshot()
	}
	agg, err := netmaster.AggregateFleet(
		netmaster.FleetDevice{ID: "a", Snapshot: mk(2)},
		netmaster.FleetDevice{ID: "b", Snapshot: mk(3)},
	)
	if err != nil {
		panic(err)
	}
	fs := agg.Export()
	fmt.Printf("%d devices, demo_total = %d\n", fs.Devices, fs.Counters["demo_total"].Total)
	// Output: 2 devices, demo_total = 5
}

// Daemon and client: boot the HTTP API in-process, mine over the wire,
// then absorb one new day through POST /v1/profile/update — the
// incremental update lands on the exact profile ID a full re-mine of
// the longer trace would produce.
func ExampleNewServerClient() {
	cfg := netmaster.DefaultServerConfig()
	srv, err := netmaster.NewServer(cfg)
	if err != nil {
		panic(err)
	}
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Shutdown(context.Background())

	c := netmaster.NewServerClient("http://"+srv.Addr(), nil)
	ctx := context.Background()
	base, err := c.Mine(ctx, netmaster.MineRequest{
		Gen: &netmaster.GenSpec{User: "volunteer1", Days: 6},
	})
	if err != nil {
		panic(err)
	}
	full, err := c.Mine(ctx, netmaster.MineRequest{
		Gen: &netmaster.GenSpec{User: "volunteer1", Days: 7},
	})
	if err != nil {
		panic(err)
	}
	newDay := 6
	up, err := c.ProfileUpdate(ctx, netmaster.ProfileUpdateRequest{
		ProfileID: base.ProfileID,
		Gen:       &netmaster.GenSpec{User: "volunteer1", Days: 7},
		Day:       &newDay,
	})
	if err != nil {
		panic(err)
	}
	h, err := c.Healthz(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("mined %s (%s…), update == full re-mine: %t, server %s\n",
		full.UserID, full.ProfileID[:9], up.ProfileID == full.ProfileID, h.Status)
	// Output: mined volunteer1 (sketch:3d…), update == full re-mine: true, server ok
}

// Serve-tier observability: enable SLO burn tracking on the daemon,
// make one request, then read the burn state from /healthz and the
// request's span back from /debug/requests.
func ExampleServeSLOConfig() {
	cfg := netmaster.DefaultServerConfig()
	cfg.SLO = netmaster.ServeSLOConfig{TargetP99MS: 60000, TargetErrorRate: 0.01}
	srv, err := netmaster.NewServer(cfg)
	if err != nil {
		panic(err)
	}
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Shutdown(context.Background())

	c := netmaster.NewServerClient("http://"+srv.Addr(), nil)
	ctx := context.Background()
	if _, err := c.Mine(ctx, netmaster.MineRequest{
		Gen: &netmaster.GenSpec{User: "volunteer1", Days: 3},
	}); err != nil {
		panic(err)
	}
	h, err := c.Healthz(ctx)
	if err != nil {
		panic(err)
	}
	dump, err := c.DebugRequests(ctx, 1)
	if err != nil {
		panic(err)
	}
	sp := dump.Recent[0]
	fmt.Printf("slo %s after %d request(s), burn error %.0f latency %.0f; span %s status %d, id set: %t\n",
		h.SLO.Status, h.SLO.Requests, h.SLO.ErrorBurnRate, h.SLO.LatencyBurnRate,
		sp.Endpoint, sp.Status, sp.RequestID != "")
	// Output: slo ok after 1 request(s), burn error 0 latency 0; span mine status 200, id set: true
}
