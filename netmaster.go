// Package netmaster is a faithful reimplementation of "NetMaster: Taming
// Energy Devourers on Smartphones" (ICPP 2014) as a trace-driven
// simulation library. It bundles everything the paper's system needs:
//
//   - a smartphone usage-trace model and a habit-driven synthetic trace
//     generator calibrated to the paper's measurement study;
//   - an RRC radio power model (3G WCDMA and LTE) with promotion and
//     inactivity-tail structure;
//   - the habit mining component (hourly usage prediction, Eq. 2/3,
//     Special-App detection);
//   - the core scheduling algorithm: multiple knapsack with overlapped
//     itemsets, built on the Ibarra–Kim FPTAS, with the (1−ε)/2 guarantee
//     of Lemma IV.1;
//   - the NetMaster middleware policy (mining + scheduling + exponential
//     duty-cycle real-time adjustment) and the paper's comparators
//     (baseline, offline oracle, naive delay and batch);
//   - an evaluation harness that reproduces every figure of the paper;
//   - an observability layer (sim-time metrics, decision tracing, fleet
//     aggregation and analysis) and an HTTP/JSON daemon (netmaster-serve)
//     that serves the pipelines as a long-running API.
//
// The package re-exports the main types of the internal packages so that
// typical uses need a single import:
//
//	traces, _ := netmaster.GenerateCohort(netmaster.EvalCohort(), 21)
//	model := netmaster.Model3G()
//	policy, _ := netmaster.NewNetMasterPolicy(netmaster.DefaultNetMasterConfig(model))
//	metrics, _ := netmaster.Run(policy, traces[0], model)
//
// The facade is organised into subsystem sections, in pipeline order:
// simulation time → usage traces → synthetic cohorts → radio power →
// habit mining → core scheduling → duty cycling → policies & replay →
// evaluation harness → online middleware & faults → observability &
// fleet → daemon & client. example_test.go carries one runnable example
// per section. Stability policy (docs/api.md): names here are additive
// — CI runs apidiff against the previous release and fails on any
// incompatible change to this package.
package netmaster

import (
	"netmaster/internal/cfgerr"
	"netmaster/internal/core"
	"netmaster/internal/device"
	"netmaster/internal/dutycycle"
	"netmaster/internal/eval"
	"netmaster/internal/faults"
	"netmaster/internal/habit"
	"netmaster/internal/knapsack"
	"netmaster/internal/metrics"
	"netmaster/internal/middleware"
	"netmaster/internal/parallel"
	"netmaster/internal/policy"
	"netmaster/internal/power"
	"netmaster/internal/reqtrace"
	"netmaster/internal/server"
	"netmaster/internal/shard"
	"netmaster/internal/simtime"
	"netmaster/internal/slo"
	"netmaster/internal/synth"
	"netmaster/internal/telemetry"
	"netmaster/internal/telemetry/analyze"
	"netmaster/internal/trace"
	"netmaster/internal/tracing"
)

// ===== Subsystem: parallel evaluation engine =====

// Parallel evaluation engine controls. The evaluation sweeps and the
// scheduler's per-slot knapsack solves fan out over a bounded worker
// pool; results are written by index, so output is bit-identical at any
// parallelism (see docs/performance.md).
var (
	// SetParallelism sets the worker-pool width (1 = fully sequential,
	// the default is GOMAXPROCS). It returns the previous setting.
	SetParallelism = parallel.SetDefaultWorkers
	// Parallelism returns the current worker-pool width.
	Parallelism = parallel.DefaultWorkers
)

// ===== Subsystem: simulation time =====

// Time primitives.
type (
	// Instant is a point in simulation time (seconds from trace start).
	Instant = simtime.Instant
	// Duration is a span of simulation time in seconds.
	Duration = simtime.Duration
	// Interval is a half-open time range.
	Interval = simtime.Interval
)

// Re-exported time constants.
const (
	Second = simtime.Second
	Minute = simtime.Minute
	Hour   = simtime.Hour
	Day    = simtime.Day
	Week   = simtime.Week
)

// ===== Subsystem: usage traces =====

// Trace model.
type (
	// Trace is a complete monitored usage record of one user.
	Trace = trace.Trace
	// AppID identifies an application by package name.
	AppID = trace.AppID
	// NetworkActivity is one recorded transfer burst.
	NetworkActivity = trace.NetworkActivity
	// ScreenSession is one screen-on period.
	ScreenSession = trace.ScreenSession
	// Interaction is one user usage event.
	Interaction = trace.Interaction
	// ActivityKind classifies transfers (sync, push, user, stream).
	ActivityKind = trace.ActivityKind
)

// Activity kinds.
const (
	KindSync       = trace.KindSync
	KindPush       = trace.KindPush
	KindUserDriven = trace.KindUserDriven
	KindStream     = trace.KindStream
)

// ReadTraceFile and WriteTraceFile are the trace (de)serializers.
var (
	ReadTraceFile  = trace.ReadFile
	WriteTraceFile = trace.WriteFile
)

// ===== Subsystem: synthetic cohorts =====

// Synthetic trace generation.
type (
	// UserSpec describes one synthetic user's habit.
	UserSpec = synth.UserSpec
	// AppSpec describes one installed application's behaviour.
	AppSpec = synth.AppSpec
)

// Generator entry points.
var (
	// GenerateTrace produces a deterministic trace for one user spec.
	GenerateTrace = synth.Generate
	// GenerateCohort produces one trace per spec.
	GenerateCohort = synth.GenerateCohort
	// GenerateHistory produces a pre-collection trace for pretraining.
	GenerateHistory = synth.GenerateHistory
	// MotivationCohort is the paper's 8-user measurement cohort.
	MotivationCohort = synth.MotivationCohort
	// EvalCohort is the paper's 3-volunteer evaluation cohort.
	EvalCohort = synth.EvalCohort
	// EvalHistories builds the volunteers' pre-collected traces.
	EvalHistories = synth.EvalHistories
	// ReadSpecsFile and WriteSpecsFile (de)serialize custom cohorts.
	ReadSpecsFile  = synth.ReadSpecsFile
	WriteSpecsFile = synth.WriteSpecsFile
)

// ===== Subsystem: radio power models =====

// Radio power modelling.
type (
	// PowerModel is a parameterised RRC radio model.
	PowerModel = power.Model
	// PowerPhase is one fixed-length radio phase.
	PowerPhase = power.Phase
	// RadioResult is the energy accounting of a radio timeline.
	RadioResult = power.Result
	// RadioBurst is one transfer burst with a tail policy.
	RadioBurst = power.Burst
)

// Stock radio models.
var (
	// Model3G is the WCDMA model used in the paper's evaluation.
	Model3G = power.Model3G
	// ModelLTE is Huang et al.'s LTE model.
	ModelLTE = power.ModelLTE
)

// ===== Subsystem: habit mining =====

// Habit mining.
type (
	// HabitConfig parameterises mining (slot width, δ thresholds).
	HabitConfig = habit.Config
	// HabitProfile is the mining component's output.
	HabitProfile = habit.Profile
	// PredictedNetActivity is one element of the predicted Tn.
	PredictedNetActivity = habit.PredictedNetActivity
)

// Incremental mining. A HabitSketch holds the per-slot sufficient
// statistics of mining, folds traces one day (or one event) at a
// time, and materialises a HabitProfile on demand. Folding day by day
// is byte-identical to MineHabits over the concatenated trace — the
// invariant internal/habit's equivalence tests pin — so a long-lived
// service can absorb each new day in O(new events) instead of
// re-mining the whole history.
type HabitSketch = habit.Sketch

// Mining entry points.
var (
	// MineHabits builds a HabitProfile from a trace.
	MineHabits = habit.Mine
	// NewHabitSketch builds an empty incremental-mining sketch for one
	// user.
	NewHabitSketch = habit.NewSketch
	// DefaultHabitConfig returns the paper's mining settings.
	DefaultHabitConfig = habit.DefaultConfig
	// DetectSpecialApps returns the paper's "Special Apps" allowlist.
	DetectSpecialApps = habit.DetectSpecialApps
)

// ===== Subsystem: core scheduling =====

// Core scheduling (Algorithm 1).
type (
	// Scheduler solves the overlapped multiple knapsack problem.
	Scheduler = core.Scheduler
	// SchedulerConfig parameterises the scheduler.
	SchedulerConfig = core.Config
	// SchedActivity is one screen-off activity to schedule.
	SchedActivity = core.Activity
	// SchedResult is the packing S of Algorithm 1.
	SchedResult = core.Schedule
	// KnapsackItem is a 0/1 knapsack item.
	KnapsackItem = knapsack.Item
	// KnapsackSolution is a selected subset of items.
	KnapsackSolution = knapsack.Solution
	// SchedSolved is the reusable per-slot solve state returned by
	// Scheduler.ScheduleDelta: pass it back on the next call and only
	// the slots whose itemset or capacity changed are re-solved, with
	// untouched solutions spliced in. The delta plan is always equal to
	// a full re-solve.
	SchedSolved = core.Solved
	// SchedDeltaStats counts, per delta re-plan, how many slot
	// knapsacks were reused versus re-solved.
	SchedDeltaStats = core.DeltaStats
)

// Scheduling entry points.
var (
	// NewScheduler builds the overlapped-knapsack scheduler.
	NewScheduler = core.New
	// DefaultSchedulerConfig returns the paper's ε and capacity model.
	DefaultSchedulerConfig = core.DefaultConfig
	// SinKnap is the Ibarra–Kim (1−ε)-approximate knapsack solver.
	SinKnap = knapsack.SinKnap
	// ExactKnapsack solves 0/1 knapsack exactly by DP (small
	// capacities).
	ExactKnapsack = knapsack.Exact
	// BranchBoundKnapsack solves exactly for any capacity.
	BranchBoundKnapsack = knapsack.BranchBound
	// GreedyKnapsack is the classic 1/2-approximation.
	GreedyKnapsack = knapsack.Greedy
)

// ===== Subsystem: duty cycling =====

// Duty cycling (real-time adjustment).
type (
	// DutyScheme generates sleep intervals between radio wake-ups.
	DutyScheme = dutycycle.Scheme
	// DutyResult summarises a duty-cycle simulation.
	DutyResult = dutycycle.Result
)

// Duty-cycle entry points.
var (
	// NewExponentialSleep is the paper's doubling backoff.
	NewExponentialSleep = dutycycle.NewExponential
	// NewFixedSleep and NewRandomSleep are the Fig. 10(b) comparators.
	NewFixedSleep  = dutycycle.NewFixed
	NewRandomSleep = dutycycle.NewRandom
	// SimulateDutyCycle runs a scheme over a horizon.
	SimulateDutyCycle = dutycycle.Simulate
)

// ===== Subsystem: policies and replay =====

// Policies and replay.
type (
	// Policy maps a trace to an execution plan.
	Policy = device.Policy
	// Plan is a policy's complete decision record.
	Plan = device.Plan
	// Execution is one activity's actual run.
	Execution = device.Execution
	// Metrics are the per-trace evaluation results.
	Metrics = device.Metrics
	// NetMasterConfig parameterises the middleware policy.
	NetMasterConfig = policy.NetMasterConfig
	// BaselinePolicy executes everything as recorded.
	BaselinePolicy = policy.Baseline
)

// Policy constructors and replay entry points.
var (
	// NewNetMasterPolicy builds the paper's middleware as a policy.
	NewNetMasterPolicy = policy.NewNetMaster
	// DefaultNetMasterConfig returns the paper's evaluation settings.
	DefaultNetMasterConfig = policy.DefaultNetMasterConfig
	// NewOracle is the offline optimal comparator.
	NewOracle = policy.NewOracle
	// NewDelay and NewBatch are the naive interval-fixed comparators.
	NewDelay = policy.NewDelay
	NewBatch = policy.NewBatch
	// Run replays a policy over a trace and returns its metrics.
	Run = device.Run
	// ComputeMetrics evaluates an explicit plan.
	ComputeMetrics = device.ComputeMetrics
)

// ===== Subsystem: dual-radio Wi-Fi offload =====

// Dual-radio scheduling: a Wi-Fi NIC power model next to the cellular
// RRC machine, per-slot network availability on traces, and policies
// that co-optimise when and on which radio each batch runs. Coverage 0
// (or a nil WiFiModel anywhere one is optional) reproduces the
// cellular-only plans byte for byte.
type (
	// WiFiModel is the Wi-Fi NIC power model: association cost,
	// high/low power states and the batch transfer rate.
	WiFiModel = power.WiFiModel
	// Radio is the interface both radio models implement — the paper's
	// g(·) burst-energy accounting per network.
	Radio = power.Radio
	// Network names the radio an execution ran on.
	Network = power.Network
	// NetworkAvailability is a set of coverage windows, as carried by
	// Trace.WiFi: merged, non-overlapping, chronological intervals
	// during which the Wi-Fi NIC is usable.
	NetworkAvailability = []simtime.Interval
	// WiFiOffloadPolicy is the offload-only baseline: transfers run as
	// recorded, covered ones on the Wi-Fi NIC.
	WiFiOffloadPolicy = policy.WiFiOffload
	// WiFiSweepRow is one coverage point of the dual-radio evaluation
	// sweep.
	WiFiSweepRow = eval.WiFiRow
)

// Radio networks.
const (
	// NetworkCellular is the cellular RRC radio (the default; the
	// zero-value Network means cellular too).
	NetworkCellular = power.NetworkCellular
	// NetworkWiFi is the Wi-Fi NIC.
	NetworkWiFi = power.NetworkWiFi
)

// Dual-radio entry points. Dual-radio NetMaster is configured, not
// separately constructed: set NetMasterConfig.WiFi and the scheduler
// widens each slot to per-network choices; OnlineReplayConfig.WiFi does
// the same for the online middleware's pooled deferral batches.
var (
	// ModelWiFi is the stock Wi-Fi NIC model.
	ModelWiFi = power.ModelWiFi
	// RunRadios replays a policy over a trace metering both radios;
	// Metrics.WiFi carries the NIC's energy accounting.
	RunRadios = device.RunRadios
	// WiFiSweep evaluates offload-only, cellular-only NetMaster and
	// dual-radio NetMaster across Wi-Fi coverage fractions.
	WiFiSweep = eval.WiFiSweep
	// DefaultWiFiCoverageSweep is the coverage figure's x-axis.
	DefaultWiFiCoverageSweep = eval.DefaultWiFiCoverageSweep
)

// ===== Subsystem: evaluation harness =====

// Evaluation harness (figure reproduction).
type (
	// PolicyResult is one policy's outcome on one trace.
	PolicyResult = eval.PolicyResult
	// MotivationStats bundles the Section III headline numbers.
	MotivationStats = eval.MotivationStats
	// Fig7Config selects the live-comparison arms.
	Fig7Config = eval.Fig7Config
	// Fig7Row / Fig8Row / Fig9Row / Fig10cRow are figure data rows.
	Fig7Row   = eval.Fig7Row
	Fig8Row   = eval.Fig8Row
	Fig9Row   = eval.Fig9Row
	Fig10cRow = eval.Fig10cRow
)

// Evaluation entry points.
var (
	// Compare runs the baseline plus the given policies over a trace.
	Compare = eval.Compare
	// CompareCtx is Compare with a cancellation context: the deadline is
	// honoured between policy replays, and a successful result is
	// byte-identical with or without one.
	CompareCtx = eval.CompareCtx
	// Motivation computes the Section III summary over a cohort.
	Motivation = eval.Motivation
	// Fig1a–Fig5 reproduce the motivation study's figures.
	Fig1a = eval.Fig1a
	Fig1b = eval.Fig1b
	Fig2  = eval.Fig2
	Fig3  = eval.Fig3
	Fig4  = eval.Fig4
	Fig5  = eval.Fig5
	// IntraUserPearson measures per-user day-to-day regularity.
	IntraUserPearson = eval.IntraUserPearson
	// Fig7 runs the full live comparison (energy, radio-on, bandwidth).
	Fig7 = eval.Fig7
	// DefaultFig7Config returns the paper's comparison arms.
	DefaultFig7Config = eval.DefaultFig7Config
	// Fig8 and Fig9 are the delay/batch sweeps.
	Fig8 = eval.Fig8
	Fig9 = eval.Fig9
	// Fig10a, Fig10b and Fig10c are the parameter analyses.
	Fig10a = eval.Fig10a
	Fig10b = eval.Fig10b
	Fig10c = eval.Fig10c
	// UserExperience counts wrong decisions (Section VI-B).
	UserExperience = eval.UserExperience
	// Fig7aGapDistribution reproduces the per-test gap headline.
	Fig7aGapDistribution = eval.Fig7aGapDistribution
	// HiddenImpact measures push-delivery latency (Section VII).
	HiddenImpact = eval.HiddenImpact
	// BatteryLife projects hours per charge.
	BatteryLife = eval.BatteryLife
	// DefaultBatteryConfig returns handset-class constants.
	DefaultBatteryConfig = eval.DefaultBatteryConfig
	// CrossModel replays the suite under multiple radio models.
	CrossModel = eval.CrossModel
	// Sensitivity sweeps NetMaster's operational knobs.
	Sensitivity = eval.Sensitivity
	// Drift runs the habit-drift experiment (recency vs uniform mining).
	Drift = eval.Drift
	// DefaultDriftConfig is the shift-work drift scenario.
	DefaultDriftConfig = eval.DefaultDriftConfig
	// DeltaRisk evaluates the impact-based δ selection strategy.
	DeltaRisk = eval.DeltaRisk
	// RenderDayTimeline draws an ASCII radio Gantt for one day.
	RenderDayTimeline = device.RenderDayTimeline
	// EnergyByApp attributes a plan's radio energy to applications.
	EnergyByApp = device.EnergyByApp
	// MetricsByDay slices a plan's metrics per day.
	MetricsByDay = device.MetricsByDay
)

// ===== Subsystem: online middleware and fault injection =====

// Online middleware, fault injection and graceful degradation (see
// docs/robustness.md).
type (
	// OnlineConfig parameterises the online middleware service.
	OnlineConfig = middleware.Config
	// OnlineReplayConfig parameterises the online (deployment-mode)
	// replay of the middleware over a trace.
	OnlineReplayConfig = middleware.ReplayConfig
	// OnlineReplayResult is the online run's outcome.
	OnlineReplayResult = middleware.ReplayResult
	// ChaosConfig parameterises a fault-injected online replay.
	ChaosConfig = middleware.ChaosConfig
	// ChaosResult is a fault-injected run's outcome: plan, health
	// counters, fault statistics and the annotated command log.
	ChaosResult = middleware.ChaosResult
	// RetryPolicy bounds command re-attempts under faults.
	RetryPolicy = middleware.RetryPolicy
	// RollingSchedule maintains one day's schedule incrementally as
	// activities arrive, re-planning through Scheduler.ScheduleDelta so
	// each arrival costs O(changed slots) while the plan stays equal to
	// a full re-solve. OnlineReplayConfig.RollingPlan drives one inside
	// the online replay (observationally; see OnlineReplayResult.Rolling).
	RollingSchedule = middleware.RollingSchedule
	// ServiceHealth is the middleware's fault-handling counters and
	// degradation mode.
	ServiceHealth = middleware.Health
	// ServiceMode is the middleware's degradation state.
	ServiceMode = middleware.Mode
	// FaultConfig is a seeded fault schedule for the injector.
	FaultConfig = faults.Config
	// FaultStats counts injector decisions per effect boundary.
	FaultStats = faults.Stats
	// FaultInjector draws deterministic fault outcomes from a schedule.
	FaultInjector = faults.Injector
	// FaultImpactRow is one fault intensity's mean evaluation outcome.
	FaultImpactRow = eval.FaultImpactRow
)

// Degradation modes.
const (
	// ModeNormal is full operation.
	ModeNormal = middleware.ModeNormal
	// ModeDutyOnly means mining failed: duty-cycle adjustment only.
	ModeDutyOnly = middleware.ModeDutyOnly
	// ModePassThrough means the record DB is unavailable: radio always
	// on until writes succeed again.
	ModePassThrough = middleware.ModePassThrough
)

// Online replay and fault-injection entry points.
var (
	// OnlineReplay drives the middleware service over a trace event by
	// event — the deployment path, as opposed to the offline planner.
	OnlineReplay = middleware.Replay
	// DefaultOnlineReplayConfig returns deployment defaults.
	DefaultOnlineReplayConfig = middleware.DefaultReplayConfig
	// NewRollingSchedule builds an empty rolling plan over a day's
	// predicted active slots.
	NewRollingSchedule = middleware.NewRollingSchedule
	// ChaosReplay runs the online service under a seeded fault
	// schedule with retries, deferral deadline and degraded modes.
	ChaosReplay = middleware.ReplayChaos
	// DefaultChaosConfig returns a chaos configuration whose deadline
	// never fires fault-free.
	DefaultChaosConfig = middleware.DefaultChaosConfig
	// DefaultRetryPolicy is the executor's backoff budget.
	DefaultRetryPolicy = middleware.DefaultRetryPolicy
	// NewFaultInjector builds a deterministic injector from a schedule.
	NewFaultInjector = faults.New
	// UniformFaults builds the single-knob uniform fault schedule.
	UniformFaults = faults.Uniform
	// FaultImpact measures energy saving retained under rising fault
	// intensity.
	FaultImpact = eval.FaultImpact
)

// ===== Subsystem: observability and fleet telemetry =====

// Observability layer (see docs/observability.md): sim-time metrics and
// decision tracing across the middleware, the core scheduler, the duty
// cycle and the evaluation sweeps.
type (
	// MetricsRegistry holds named counters, gauges and histograms with a
	// sim-time-stamped, deterministic JSON snapshot.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a frozen, JSON-serialisable registry view.
	MetricsSnapshot = metrics.Snapshot
	// TraceSink is the bounded ring buffer collecting trace events.
	TraceSink = tracing.Sink
	// TraceEvent is one sim-time-stamped decision/effect record.
	TraceEvent = tracing.Event
	// TraceEventKind classifies trace events.
	TraceEventKind = tracing.Kind
	// TraceHeader is the JSONL header line carrying the format version
	// and the ring's drop count (trace_dropped_total).
	TraceHeader = tracing.Header
	// FleetDevice pairs a device ID with its metrics snapshot for fleet
	// aggregation.
	FleetDevice = telemetry.Device
	// FleetAgg is the mergeable multi-device aggregate: counters sum,
	// gauges keep min/mean/max, histograms merge bucket-wise.
	FleetAgg = telemetry.Agg
	// FleetSnapshot is the deterministic fleet-wide export.
	FleetSnapshot = telemetry.FleetSnapshot
	// FleetReport is the trace-analysis roll-up netmaster-analyze
	// prints: per-app attribution, prediction scorecards, deferral
	// distributions, thrash stats and invariant findings.
	FleetReport = analyze.FleetReport
	// DeviceAnalysis is one device's trace analysis.
	DeviceAnalysis = analyze.DeviceReport
	// AnalysisFinding is one typed invariant-audit result.
	AnalysisFinding = analyze.Finding
)

// Observability entry points.
var (
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = metrics.NewRegistry
	// DefaultMetrics returns the process-wide metrics registry.
	DefaultMetrics = metrics.Default
	// NewTraceSink builds a trace sink holding at most capacity events
	// (<= 0 means the default capacity).
	NewTraceSink = tracing.NewSink
	// DefaultTraceSink returns the process-wide trace sink.
	DefaultTraceSink = tracing.Default
	// SetEvalObservability wires a registry and sink into the evaluation
	// sweeps (Compare, Fig7, FaultImpact, …); two nils unwire them.
	SetEvalObservability = eval.SetObservability
	// AggregateFleet merges per-device snapshots into one fleet
	// aggregate; the result is independent of device order.
	AggregateFleet = telemetry.Aggregate
	// AnalyzeDevice derives one device's report from its trace.
	AnalyzeDevice = analyze.Device
	// AnalyzeFleet rolls device analyses up to the cohort.
	AnalyzeFleet = analyze.Fleet
	// WriteFleetProm writes a fleet snapshot in Prometheus text
	// exposition format.
	WriteFleetProm = telemetry.WriteProm
)

// Extension types.
type (
	// GapDistribution summarises per-test gaps to the oracle.
	GapDistribution = eval.GapDistribution
	// PushLatencyRow is one policy's push-delay summary.
	PushLatencyRow = eval.PushLatencyRow
	// BatteryRow and BatteryConfig belong to the battery projection.
	BatteryRow    = eval.BatteryRow
	BatteryConfig = eval.BatteryConfig
	// AppEnergy is one application's radio-energy share.
	AppEnergy = device.AppEnergy
	// DriftRow and DriftConfig belong to the habit-drift experiment.
	DriftRow    = eval.DriftRow
	DriftConfig = eval.DriftConfig
)

// ===== Subsystem: configuration validation =====

// Typed configuration errors. Every config in the library (OnlineConfig,
// ChaosConfig, SchedulerConfig, ServerConfig, …) has a Validate method
// returning these, so callers can match on the exact failing field.
type (
	// ConfigFieldError is one invalid configuration field: which
	// component, which field, the offending value and why.
	ConfigFieldError = cfgerr.FieldError
	// ConfigErrors collects every invalid field of one Validate pass.
	ConfigErrors = cfgerr.Errors
)

// IsConfigError reports whether err contains a field error for the
// named component and field (e.g. "middleware.Config", "DutyMaxSleep").
var IsConfigError = cfgerr.Is

// ===== Subsystem: daemon and client =====

// The HTTP/JSON daemon (cmd/netmaster-serve) and its typed client. The
// daemon serves mining, scheduling, simulation and fleet telemetry; see
// docs/api.md for the wire format and operational semantics.
type (
	// Server is the daemon: an http.Handler plus its state.
	Server = server.Server
	// ServerConfig parameterises the daemon (address, in-flight bound,
	// cache size, deadlines).
	ServerConfig = server.Config
	// ServerClient is a typed caller for the daemon's API.
	ServerClient = server.Client
	// MineRequest / MineResponse are the POST /v1/mine wire types.
	MineRequest  = server.MineRequest
	MineResponse = server.MineResponse
	// ProfileUpdateRequest / ProfileUpdateResponse are the
	// POST /v1/profile/update wire types: fold new days into a cached
	// profile incrementally instead of re-mining the whole trace.
	ProfileUpdateRequest  = server.ProfileUpdateRequest
	ProfileUpdateResponse = server.ProfileUpdateResponse
	// ScheduleRequest / ScheduleResponse are the POST /v1/schedule wire
	// types.
	ScheduleRequest  = server.ScheduleRequest
	ScheduleResponse = server.ScheduleResponse
	// SimulateRequest / SimulateResponse are the POST /v1/simulate wire
	// types.
	SimulateRequest  = server.SimulateRequest
	SimulateResponse = server.SimulateResponse
	// IngestRequest / IngestResponse are the POST /v1/fleet/ingest wire
	// types; FleetReportResponse is GET /v1/fleet/report's body.
	IngestRequest       = server.IngestRequest
	IngestResponse      = server.IngestResponse
	FleetReportResponse = server.FleetReportResponse
	// GenSpec asks the daemon to synthesise a cohort trace server-side.
	GenSpec = server.GenSpec
	// NetworksJSON is the optional multi-network block of schedule and
	// simulate requests; WiFiNetworkJSON configures its Wi-Fi arm.
	// Requests without one are answered byte-identically to before the
	// block existed.
	NetworksJSON    = server.NetworksJSON
	WiFiNetworkJSON = server.WiFiNetworkJSON
	// ServerStoreStatus summarises the durable state layer on /healthz
	// when the daemon runs with a state directory.
	ServerStoreStatus = server.StoreStatus
	// ClientRetryPolicy bounds the client's transparent retries of 429s,
	// read-only 503s and transient network errors.
	ClientRetryPolicy = server.RetryPolicy
	// HealthResponse is GET /healthz's body.
	HealthResponse = server.HealthResponse
)

// Daemon entry points.
var (
	// NewServer builds a daemon from a ServerConfig.
	NewServer = server.New
	// DefaultServerConfig returns production-shaped daemon defaults.
	DefaultServerConfig = server.DefaultConfig
	// NewServerClient returns a typed client for a running daemon.
	NewServerClient = server.NewClient
	// DefaultClientRetryPolicy retries overload answers a handful of
	// times over roughly a second; opt in with ServerClient.WithRetry.
	DefaultClientRetryPolicy = server.DefaultRetryPolicy
)

// ===== Subsystem: sharded serve tier =====

// Consistent-hash placement and the routing front end: netmaster-serve
// -router proxies /v1/* across N backend daemons by device ID, fans
// fleet-wide reads out to every shard and merges them exactly, and
// splits batch requests into per-shard sub-batches. See docs/api.md.
type (
	// ShardConfig names the backend set and the virtual-node count.
	ShardConfig = shard.Config
	// ShardRing is an immutable consistent-hash ring over the backends;
	// Owner(key) is a pure function of the configuration.
	ShardRing = shard.Ring
	// ServeRouter is the routing front end (an http.Handler).
	ServeRouter = server.Router
	// ServeRouterConfig parameterises the router (backends, in-flight
	// bound, fan-out parallelism, deadlines).
	ServeRouterConfig = server.RouterConfig
	// RouterHealth is the router's GET /healthz body: per-shard health
	// plus the summed fleet size.
	RouterHealth = server.RouterHealthResponse
	// BatchIngestRequest / BatchIngestResponse are the
	// POST /v1/fleet/ingest:batch wire types; the request may carry a
	// request_id idempotency key that makes retries replay-safe.
	BatchIngestRequest  = server.BatchIngestRequest
	BatchIngestResponse = server.BatchIngestResponse
	// BatchScheduleRequest / BatchScheduleResponse are the
	// POST /v1/schedule:batch wire types.
	BatchScheduleRequest  = server.BatchScheduleRequest
	BatchScheduleResponse = server.BatchScheduleResponse
	// BatchItemError is one item's failure inside a batch response.
	BatchItemError = server.BatchItemError
	// DeviceDump is one device's slice of GET /v1/fleet/devices — the
	// shard-merge currency behind routed fleet reports.
	DeviceDump = server.DeviceDump
	// FleetDevicesResponse is GET /v1/fleet/devices's body.
	FleetDevicesResponse = server.FleetDevicesResponse
)

// Sharded serve-tier entry points.
var (
	// NewShardRing builds a placement ring from a ShardConfig.
	NewShardRing = shard.New
	// NewServeRouter builds the routing front end across the configured
	// backends.
	NewServeRouter = server.NewRouter
	// DefaultServeRouterConfig returns production-shaped router
	// defaults; the caller must still provide Backends.
	DefaultServeRouterConfig = server.DefaultRouterConfig
)

// ===== Subsystem: serve-tier request observability =====

// Request tracing, per-endpoint RED metrics, slow-request capture and
// SLO burn tracking across the daemon and the router: every response
// carries an X-Netmaster-Request-Id, spans land in a bounded ring
// served on /debug/requests, and burn rates against configurable p99 /
// error-rate objectives ride /metrics and /healthz. See
// docs/observability.md.
type (
	// RequestSpan is one request's trace record: ID, role, endpoint,
	// hop, shard, status, cache/store disposition and the queue-wait /
	// handle / total millisecond split.
	RequestSpan = reqtrace.Span
	// DebugRequestsResponse is GET /debug/requests's body: ring
	// capacity and totals plus the recent and slowest span sets.
	DebugRequestsResponse = server.DebugRequestsResponse
	// ServeSLOConfig sets the burn-tracking objectives (target p99 in
	// ms, target 5xx rate, trailing window) on ServerConfig.SLO and
	// ServeRouterConfig.SLO; the zero value disables tracking.
	ServeSLOConfig = slo.Config
	// SLOStatus is the burn-tracking block on /healthz: objectives,
	// window fill and the error/latency burn rates.
	SLOStatus = slo.Status
)

// Serve-tier observability entry points.
var (
	// SLOHistogramQuantile interpolates a quantile from an exported
	// latency-histogram snapshot, Prometheus-style — the same math
	// netmaster-bench uses for its server-side report.
	SLOHistogramQuantile = slo.HistogramQuantile
)
